package dataset

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Spec describes a synthetic classification task. The generator places
// Subclusters Gaussian modes per class in a low-dimensional latent space,
// lifts them to the full feature space through a shared random linear map
// plus a sinusoidal warp, and adds observation noise. Overlap between
// classes (and therefore task difficulty) is controlled by the ratio of
// intra-mode spread to inter-class center distance, and the warp strength
// controls how nonlinear the class boundaries are — which is exactly the
// property that separates RBF-encoded HDC and DNNs from linear SVMs.
type Spec struct {
	Name        string
	Features    int     // observed dimensionality n
	Classes     int     // number of labels k
	Train, Test int     // split sizes
	Subclusters int     // Gaussian modes per class
	LatentDim   int     // intrinsic dimensionality of the manifold
	CenterStd   float64 // spread of class/mode centers in latent space
	IntraStd    float64 // within-mode spread (overlap knob)
	Warp        float64 // strength of sinusoidal nonlinearity
	NoiseStd    float64 // observation noise in feature space
	Seed        uint64
}

// Validate reports the first problem with the spec, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Features <= 0:
		return fmt.Errorf("spec %q: Features must be positive, got %d", s.Name, s.Features)
	case s.Classes < 2:
		return fmt.Errorf("spec %q: Classes must be >= 2, got %d", s.Name, s.Classes)
	case s.Train <= 0 || s.Test <= 0:
		return fmt.Errorf("spec %q: Train and Test must be positive, got %d/%d", s.Name, s.Train, s.Test)
	case s.Subclusters <= 0:
		return fmt.Errorf("spec %q: Subclusters must be positive, got %d", s.Name, s.Subclusters)
	case s.LatentDim <= 0:
		return fmt.Errorf("spec %q: LatentDim must be positive, got %d", s.Name, s.LatentDim)
	}
	return nil
}

// Generate materializes the train and test splits described by the spec.
// The same spec (including seed) always produces identical bits.
func (s *Spec) Generate() (train, test *Dataset, err error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	root := rng.New(s.Seed)
	structRNG := root.Split() // class/mode geometry
	trainRNG := root.Split()
	testRNG := root.Split()

	// Shared lift W (Features × LatentDim) and warp directions V.
	w := mat.New(s.Features, s.LatentDim)
	structRNG.FillNorm(w.Data, 0, 1/math.Sqrt(float64(s.LatentDim)))
	v := mat.New(s.Features, s.LatentDim)
	structRNG.FillNorm(v.Data, 0, 1/math.Sqrt(float64(s.LatentDim)))
	phases := make([]float64, s.Features)
	structRNG.FillUniform(phases, 0, 2*math.Pi)

	// Mode centers per class.
	centers := make([][][]float64, s.Classes)
	for c := range centers {
		centers[c] = make([][]float64, s.Subclusters)
		for m := range centers[c] {
			z := make([]float64, s.LatentDim)
			structRNG.FillNorm(z, 0, s.CenterStd)
			centers[c][m] = z
		}
	}

	sample := func(d *Dataset, i int, r *rng.Rand) {
		c := r.Intn(s.Classes)
		m := r.Intn(s.Subclusters)
		z := make([]float64, s.LatentDim)
		for j := range z {
			z[j] = centers[c][m][j] + s.IntraStd*r.NormFloat64()
		}
		row := d.X.Row(i)
		for f := 0; f < s.Features; f++ {
			lin := mat.Dot(w.Row(f), z)
			warp := s.Warp * math.Sin(mat.Dot(v.Row(f), z)+phases[f])
			row[f] = lin + warp + s.NoiseStd*r.NormFloat64()
		}
		d.Y[i] = c
	}

	mk := func(n int, r *rng.Rand, suffix string) *Dataset {
		d := &Dataset{
			Name:    s.Name + suffix,
			X:       mat.New(n, s.Features),
			Y:       make([]int, n),
			Classes: s.Classes,
		}
		for i := 0; i < n; i++ {
			sample(d, i, r)
		}
		return d
	}
	return mk(s.Train, trainRNG, "/train"), mk(s.Test, testRNG, "/test"), nil
}

// PaperSpecs returns the five evaluation datasets of Table I, with feature
// and class counts matching the paper and sample counts scaled by `scale`
// relative to CI-friendly defaults (scale 1.0 ≈ a few thousand samples;
// the paper's full sizes would be scale ≈ 10–40). Difficulty knobs are set
// so the relative ordering reported in Fig. 4 (e.g. DIABETES hardest,
// MNIST-like easiest) is reproduced.
func PaperSpecs(scale float64, seed uint64) []*Spec {
	sz := func(base int) int {
		n := int(math.Round(float64(base) * scale))
		if n < 60 {
			n = 60
		}
		return n
	}
	return []*Spec{
		{
			// MNIST: 784 features, 10 classes; highly separable modes,
			// moderate nonlinearity (digit styles = subclusters).
			Name: "MNIST", Features: 784, Classes: 10,
			Train: sz(3000), Test: sz(600),
			Subclusters: 3, LatentDim: 24,
			CenterStd: 1.0, IntraStd: 0.52, Warp: 0.8, NoiseStd: 0.20,
			Seed: seed ^ 0x11,
		},
		{
			// UCIHAR: 561 features, 12 activities; sensor statistics live on
			// smooth nonlinear manifolds with some cross-activity confusion.
			Name: "UCIHAR", Features: 561, Classes: 12,
			Train: sz(2400), Test: sz(600),
			Subclusters: 2, LatentDim: 16,
			CenterStd: 1.0, IntraStd: 0.58, Warp: 1.1, NoiseStd: 0.25,
			Seed: seed ^ 0x22,
		},
		{
			// ISOLET: 617 features, 26 spoken letters; many classes, strong
			// nonlinear structure (formant interactions), confusable pairs.
			Name: "ISOLET", Features: 617, Classes: 26,
			Train: sz(2600), Test: sz(650),
			Subclusters: 2, LatentDim: 20,
			CenterStd: 1.0, IntraStd: 0.60, Warp: 1.2, NoiseStd: 0.25,
			Seed: seed ^ 0x33,
		},
		{
			// PAMAP2: only 54 IMU features, 5 activities, large sample count;
			// low-dimensional but heavily warped (body-dynamics nonlinearity).
			Name: "PAMAP2", Features: 54, Classes: 5,
			Train: sz(6000), Test: sz(1500),
			Subclusters: 4, LatentDim: 10,
			CenterStd: 1.0, IntraStd: 0.62, Warp: 1.4, NoiseStd: 0.30,
			Seed: seed ^ 0x44,
		},
		{
			// DIABETES: 49 clinical features, 3 outcome classes; noisy,
			// overlapping — the hardest task in Fig. 4 for every learner.
			Name: "DIABETES", Features: 49, Classes: 3,
			Train: sz(4000), Test: sz(1000),
			Subclusters: 3, LatentDim: 8,
			CenterStd: 1.0, IntraStd: 1.05, Warp: 1.0, NoiseStd: 0.45,
			Seed: seed ^ 0x55,
		},
	}
}

// SpecByName returns the paper spec with the given name (case-sensitive).
func SpecByName(name string, scale float64, seed uint64) (*Spec, error) {
	for _, s := range PaperSpecs(scale, seed) {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown paper dataset %q", name)
}

// Load generates the named paper dataset (normalized, ready to train).
func Load(name string, scale float64, seed uint64) (train, test *Dataset, err error) {
	spec, err := SpecByName(name, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	train, test, err = spec.Generate()
	if err != nil {
		return nil, nil, err
	}
	NormalizePair(train, test)
	return train, test, nil
}
