package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func tinySpec(seed uint64) *Spec {
	return &Spec{
		Name: "tiny", Features: 12, Classes: 3,
		Train: 300, Test: 120,
		Subclusters: 2, LatentDim: 4,
		CenterStd: 1.0, IntraStd: 0.3, Warp: 0.5, NoiseStd: 0.1,
		Seed: seed,
	}
}

func TestValidate(t *testing.T) {
	d := &Dataset{Name: "d", X: mat.New(2, 3), Y: []int{0, 1}, Classes: 2}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{Name: "d", X: mat.New(2, 3), Y: []int{0}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
	bad2 := &Dataset{Name: "d", X: mat.New(1, 3), Y: []int{5}, Classes: 2}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	bad3 := &Dataset{Name: "d", X: mat.New(0, 3), Y: nil, Classes: 0}
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero classes accepted")
	}
}

func TestGenerateShapes(t *testing.T) {
	train, test, err := tinySpec(1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 300 || test.N() != 120 {
		t.Fatalf("sizes %d/%d, want 300/120", train.N(), test.N())
	}
	if train.Features() != 12 || test.Features() != 12 {
		t.Fatal("wrong feature count")
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := tinySpec(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tinySpec(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatalf("same-seed generation diverged at element %d", i)
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels diverged")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _, _ := tinySpec(1).Generate()
	b, _, _ := tinySpec(2).Generate()
	same := 0
	for i := range a.X.Data {
		if a.X.Data[i] == b.X.Data[i] {
			same++
		}
	}
	if same == len(a.X.Data) {
		t.Fatal("different seeds generated identical data")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Features = 0 },
		func(s *Spec) { s.Classes = 1 },
		func(s *Spec) { s.Train = 0 },
		func(s *Spec) { s.Test = 0 },
		func(s *Spec) { s.Subclusters = 0 },
		func(s *Spec) { s.LatentDim = 0 },
	}
	for i, mutate := range cases {
		s := tinySpec(1)
		mutate(s)
		if _, _, err := s.Generate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

// Nearest-centroid accuracy on generated data must be far above chance:
// the generator is supposed to produce learnable structure.
func TestGeneratedDataIsLearnable(t *testing.T) {
	train, test, err := tinySpec(3).Generate()
	if err != nil {
		t.Fatal(err)
	}
	NormalizePair(train, test)
	q := train.Features()
	centroids := mat.New(train.Classes, q)
	counts := make([]int, train.Classes)
	for i := 0; i < train.N(); i++ {
		mat.Axpy(centroids.Row(train.Y[i]), 1, train.X.Row(i))
		counts[train.Y[i]]++
	}
	for c := 0; c < train.Classes; c++ {
		if counts[c] > 0 {
			mat.Scale(centroids.Row(c), 1/float64(counts[c]))
		}
	}
	correct := 0
	for i := 0; i < test.N(); i++ {
		sims := make([]float64, test.Classes)
		for c := 0; c < test.Classes; c++ {
			sims[c] = mat.CosineSim(test.X.Row(i), centroids.Row(c))
		}
		if mat.ArgMax(sims) == test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.N())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %.3f too close to chance (1/3)", acc)
	}
}

func TestAllClassesPresent(t *testing.T) {
	train, _, err := tinySpec(4).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range train.ClassCounts() {
		if n == 0 {
			t.Fatalf("class %d has no samples", c)
		}
	}
}

func TestSplit(t *testing.T) {
	d, _, _ := tinySpec(5).Generate()
	train, test := d.Split(0.75, 9)
	if train.N()+test.N() != d.N() {
		t.Fatal("split loses samples")
	}
	if train.N() != 225 {
		t.Fatalf("train size %d, want 225", train.N())
	}
	// Deterministic.
	tr2, _ := d.Split(0.75, 9)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	d, _, _ := tinySpec(6).Generate()
	// Tag: first feature = label to verify rows move with labels.
	for i := 0; i < d.N(); i++ {
		d.X.Row(i)[0] = float64(d.Y[i])
	}
	d.Shuffle(rng.New(1))
	for i := 0; i < d.N(); i++ {
		if int(d.X.Row(i)[0]) != d.Y[i] {
			t.Fatal("shuffle separated a sample from its label")
		}
	}
}

func TestNormalizerStats(t *testing.T) {
	train, test, err := tinySpec(8).Generate()
	if err != nil {
		t.Fatal(err)
	}
	NormalizePair(train, test)
	// After z-scoring on train, train features must be ~N(0,1).
	for j := 0; j < train.Features(); j++ {
		col := make([]float64, train.N())
		for i := 0; i < train.N(); i++ {
			col[i] = train.X.At(i, j)
		}
		if m := mat.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("feature %d mean %v after z-score", j, m)
		}
		if v := mat.Variance(col); math.Abs(v-1) > 1e-6 {
			t.Fatalf("feature %d variance %v after z-score", j, v)
		}
	}
}

func TestNormalizerConstantFeature(t *testing.T) {
	d := &Dataset{Name: "c", X: mat.FromRows([][]float64{{5, 1}, {5, 3}}), Y: []int{0, 1}, Classes: 2}
	n := FitNormalizer(d)
	n.Apply(d)
	if d.X.At(0, 0) != 0 || d.X.At(1, 0) != 0 {
		t.Fatal("constant feature should map to 0")
	}
}

func TestPaperSpecsMatchTable1(t *testing.T) {
	specs := PaperSpecs(1, 42)
	want := map[string][2]int{
		"MNIST":    {784, 10},
		"UCIHAR":   {561, 12},
		"ISOLET":   {617, 26},
		"PAMAP2":   {54, 5},
		"DIABETES": {49, 3},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		nk, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if s.Features != nk[0] || s.Classes != nk[1] {
			t.Fatalf("%s: n=%d k=%d, want n=%d k=%d", s.Name, s.Features, s.Classes, nk[0], nk[1])
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("MNIST", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadSmallScale(t *testing.T) {
	train, test, err := Load("PAMAP2", 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	if train.Features() != 54 || test.Classes != 5 {
		t.Fatal("Load returned wrong shape")
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubset(t *testing.T) {
	d, _, _ := tinySpec(10).Generate()
	sub := d.Subset([]int{5, 10, 15})
	if sub.N() != 3 {
		t.Fatal("subset wrong size")
	}
	for i, j := range []int{5, 10, 15} {
		if sub.Y[i] != d.Y[j] {
			t.Fatal("subset label mismatch")
		}
	}
	// copied, not aliased
	sub.X.Set(0, 0, 12345)
	if d.X.At(5, 0) == 12345 {
		t.Fatal("Subset aliases parent storage")
	}
}

// Property: generation is deterministic for arbitrary seeds.
func TestGenerateDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := tinySpec(seed)
		s.Train, s.Test = 20, 10
		a, _, err := s.Generate()
		if err != nil {
			return false
		}
		b, _, err := s.Generate()
		if err != nil {
			return false
		}
		for i := range a.X.Data {
			if a.X.Data[i] != b.X.Data[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
