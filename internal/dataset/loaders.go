package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mat"
)

// ReadCSV parses a headerless numeric CSV stream where labelCol holds an
// integer class label and every other column is a float feature. Labels may
// be any integers; they are re-indexed densely to [0, k) in first-seen
// order. Use labelCol = -1 to mean the last column.
func ReadCSV(r io.Reader, labelCol int) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	var rawLabels []int
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		lc := labelCol
		if lc < 0 {
			lc = len(fields) - 1
		}
		if lc >= len(fields) {
			return nil, fmt.Errorf("dataset: line %d has %d columns, label column %d out of range", lineNo, len(fields), lc)
		}
		feats := make([]float64, 0, len(fields)-1)
		var label int
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if i == lc {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad label %q: %w", lineNo, f, err)
				}
				label = v
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad feature %q: %w", lineNo, f, err)
			}
			feats = append(feats, v)
		}
		if len(rows) > 0 && len(feats) != len(rows[0]) {
			return nil, fmt.Errorf("dataset: line %d has %d features, want %d", lineNo, len(feats), len(rows[0]))
		}
		rows = append(rows, feats)
		rawLabels = append(rawLabels, label)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV input")
	}
	// Re-index raw labels densely by ascending value, so already-dense
	// labels (0..k-1) survive a write/read round trip unchanged.
	distinct := map[int]bool{}
	for _, l := range rawLabels {
		distinct[l] = true
	}
	order := make([]int, 0, len(distinct))
	for l := range distinct {
		order = append(order, l)
	}
	sort.Ints(order)
	labelMap := make(map[int]int, len(order))
	for i, l := range order {
		labelMap[l] = i
	}
	labels := make([]int, len(rawLabels))
	for i, l := range rawLabels {
		labels[i] = labelMap[l]
	}
	d := &Dataset{
		Name:    "csv",
		X:       mat.FromRows(rows),
		Y:       labels,
		Classes: len(labelMap),
	}
	return d, d.Validate()
}

// WriteCSV emits d in the format ReadCSV accepts, label last.
func WriteCSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for _, v := range row {
			if _, err := fmt.Fprintf(bw, "%g,", v); err != nil {
				return fmt.Errorf("dataset: write: %w", err)
			}
		}
		if _, err := fmt.Fprintf(bw, "%d\n", d.Y[i]); err != nil {
			return fmt.Errorf("dataset: write: %w", err)
		}
	}
	return bw.Flush()
}

const (
	idxMagicU8Images = 0x00000803 // 3-dimensional unsigned bytes (images)
	idxMagicU8Labels = 0x00000801 // 1-dimensional unsigned bytes (labels)
)

// ReadIDX parses the MNIST IDX pair format: an image file of unsigned bytes
// (magic 0x803, dims N×H×W) and a label file (magic 0x801, dims N). Pixels
// are scaled to [0,1]. This lets the real MNIST files drop into the
// harness unchanged when available.
func ReadIDX(images, labels io.Reader, classes int) (*Dataset, error) {
	var hdr [4]uint32
	if err := binary.Read(images, binary.BigEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: idx image header: %w", err)
	}
	if hdr[0] != idxMagicU8Images {
		return nil, fmt.Errorf("dataset: bad idx image magic 0x%x", hdr[0])
	}
	n, h, w := int(hdr[1]), int(hdr[2]), int(hdr[3])
	pixels := make([]byte, n*h*w)
	if _, err := io.ReadFull(images, pixels); err != nil {
		return nil, fmt.Errorf("dataset: idx image payload: %w", err)
	}

	var lhdr [2]uint32
	if err := binary.Read(labels, binary.BigEndian, lhdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: idx label header: %w", err)
	}
	if lhdr[0] != idxMagicU8Labels {
		return nil, fmt.Errorf("dataset: bad idx label magic 0x%x", lhdr[0])
	}
	if int(lhdr[1]) != n {
		return nil, fmt.Errorf("dataset: idx label count %d != image count %d", lhdr[1], n)
	}
	lab := make([]byte, n)
	if _, err := io.ReadFull(labels, lab); err != nil {
		return nil, fmt.Errorf("dataset: idx label payload: %w", err)
	}

	d := &Dataset{
		Name:    "idx",
		X:       mat.New(n, h*w),
		Y:       make([]int, n),
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		base := i * h * w
		for j := 0; j < h*w; j++ {
			row[j] = float64(pixels[base+j]) / 255
		}
		d.Y[i] = int(lab[i])
	}
	return d, d.Validate()
}
