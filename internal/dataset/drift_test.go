package dataset

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func driftSource(t *testing.T) *Dataset {
	t.Helper()
	spec := tinySpec(31)
	train, _, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return train
}

func TestDriftStreamValidation(t *testing.T) {
	d := driftSource(t)
	if _, err := NewDriftStream(d, DriftShift, 0, 1, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := NewDriftStream(d, DriftShift, 1.5, 1, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := NewDriftStream(d, DriftShift, 0.5, -1, 1); err == nil {
		t.Fatal("negative severity accepted")
	}
	if _, err := NewDriftStream(d, DriftKind(9), 0.5, 1, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	empty := &Dataset{Name: "e", X: mat.New(0, 3), Y: nil, Classes: 2}
	if _, err := NewDriftStream(empty, DriftShift, 0.5, 1, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDriftStreamConsumesAll(t *testing.T) {
	d := driftSource(t)
	s, err := NewDriftStream(d, DriftShift, 0.5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != d.N() || s.Remaining() != d.N() {
		t.Fatal("length bookkeeping wrong")
	}
	n := 0
	for {
		x, label, ok := s.Next()
		if !ok {
			break
		}
		if len(x) != d.Features() {
			t.Fatal("wrong sample width")
		}
		if label < 0 || label >= d.Classes {
			t.Fatal("label out of range")
		}
		n++
	}
	if n != d.N() {
		t.Fatalf("consumed %d of %d", n, d.N())
	}
	if s.Remaining() != 0 {
		t.Fatal("Remaining after exhaustion not 0")
	}
}

func TestDriftSeverityGrows(t *testing.T) {
	d := driftSource(t)
	s, err := NewDriftStream(d, DriftShift, 1.0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Severity(0) != 0 {
		t.Fatalf("initial severity %v, want 0", s.Severity(0))
	}
	if math.Abs(s.Severity(d.N()-1)-3) > 1e-12 {
		t.Fatalf("final severity %v, want 3", s.Severity(d.N()-1))
	}
	if s.Severity(d.N()/2) <= s.Severity(1) {
		t.Fatal("severity not growing")
	}
}

func TestDriftShiftAffectsOnlyChosenFeatures(t *testing.T) {
	d := driftSource(t)
	s, err := NewDriftStream(d, DriftShift, 0.25, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Skip to the last sample where drift is maximal.
	var lastX []float64
	for {
		x, _, ok := s.Next()
		if !ok {
			break
		}
		lastX = x
	}
	orig := d.X.Row(d.N() - 1)
	changed := 0
	for j := range lastX {
		if lastX[j] != orig[j] {
			changed++
		}
	}
	want := len(s.affected)
	if changed != want {
		t.Fatalf("%d features changed, want %d", changed, want)
	}
}

func TestDriftScaleAndNoiseKinds(t *testing.T) {
	d := driftSource(t)
	for _, kind := range []DriftKind{DriftScale, DriftNoise} {
		s, err := NewDriftStream(d, kind, 0.5, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		// First sample has severity 0: must equal the source exactly.
		x0, _, ok := s.Next()
		if !ok {
			t.Fatal("empty stream")
		}
		for j := range x0 {
			if x0[j] != d.X.At(0, j) {
				t.Fatalf("kind %d corrupted the zero-severity sample", kind)
			}
		}
		// Drain; the last sample must differ from the source.
		var lastX []float64
		for {
			x, _, ok := s.Next()
			if !ok {
				break
			}
			lastX = x
		}
		same := true
		for j := range lastX {
			if lastX[j] != d.X.At(d.N()-1, j) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("kind %d never corrupted the final sample", kind)
		}
	}
}

func TestDriftResetReplaysDeterministically(t *testing.T) {
	d := driftSource(t)
	s, err := NewDriftStream(d, DriftShift, 0.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var first [][]float64
	for {
		x, _, ok := s.Next()
		if !ok {
			break
		}
		first = append(first, x)
	}
	s.Reset()
	i := 0
	for {
		x, _, ok := s.Next()
		if !ok {
			break
		}
		for j := range x {
			if x[j] != first[i][j] {
				t.Fatal("DriftShift replay differs after Reset")
			}
		}
		i++
	}
	if i != len(first) {
		t.Fatal("replay length differs")
	}
}

// TestDriftSeverityMonotoneAtBoundaries pins the severity ramp contract at
// the stream's edges: severity starts at exactly 0, ends at exactly
// maxSeverity, never decreases in between, and the single-sample stream —
// where the i/(N−1) ramp degenerates — reports maxSeverity rather than
// dividing by zero.
func TestDriftSeverityMonotoneAtBoundaries(t *testing.T) {
	src := driftSource(t)
	const maxSev = 2.5
	s, err := NewDriftStream(src, DriftShift, 0.5, maxSev, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	if got := s.Severity(0); got != 0 {
		t.Fatalf("severity at stream start = %v, want exactly 0", got)
	}
	if got := s.Severity(n - 1); got != maxSev {
		t.Fatalf("severity at stream end = %v, want exactly %v", got, maxSev)
	}
	prev := math.Inf(-1)
	for i := 0; i < n; i++ {
		sev := s.Severity(i)
		if sev < prev {
			t.Fatalf("severity decreased at position %d: %v -> %v", i, prev, sev)
		}
		if sev < 0 || sev > maxSev {
			t.Fatalf("severity %v at position %d outside [0, %v]", sev, i, maxSev)
		}
		prev = sev
	}

	// Degenerate single-sample stream: the ramp has no interior, severity
	// must clamp to the maximum instead of dividing by zero.
	one := src.Subset([]int{0})
	s1, err := NewDriftStream(one, DriftScale, 0.5, maxSev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.Severity(0); got != maxSev {
		t.Fatalf("single-sample severity = %v, want %v", got, maxSev)
	}

	// The consumed stream must apply exactly the boundary severities: the
	// first emitted sample is uncorrupted, the last carries the full shift.
	s2, err := NewDriftStream(src, DriftShift, 0.5, maxSev, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, _, ok := s2.Next()
	if !ok {
		t.Fatal("stream empty")
	}
	for j, v := range first {
		if v != src.X.Row(0)[j] {
			t.Fatalf("first sample corrupted at feature %d: %v != %v", j, v, src.X.Row(0)[j])
		}
	}
	var last []float64
	for {
		x, _, ok := s2.Next()
		if !ok {
			break
		}
		last = x
	}
	want := mat.New(1, src.Features())
	copy(want.Row(0), src.X.Row(src.N()-1))
	shifted := 0
	for j, v := range last {
		switch {
		case v == want.Row(0)[j]:
		case v == want.Row(0)[j]+maxSev:
			shifted++
		default:
			t.Fatalf("last sample feature %d shifted by %v, want 0 or %v", j, v-want.Row(0)[j], maxSev)
		}
	}
	if shifted == 0 {
		t.Fatal("no feature carried the full end-of-stream shift")
	}
}
