#!/bin/sh
# chaos_smoke.sh — the process-level fault-injection CI smoke: build the
# real binaries, start two disthd-serve worker shards and a disthd-cluster
# coordinator in front of them, drive load over loopback with
# `hdbench -chaos -http`, SIGKILL one worker mid-load, and require that
# the load run still exits 0 — hdbench exits nonzero unless every request
# was answered, so a kill the coordinator's retries, breaker, and local
# fallback fail to absorb fails this script too. Finally SIGTERM the
# coordinator and assert a
# clean drain (the "bye:" stats line only prints after in-flight requests
# are answered and the probe/merge loops have stopped).
#
# Everything trains the same deterministic demo model (-demo PAMAP2
# -dim 128 -scale 0.05 -seed 42), so the coordinator's local fallback
# answers exactly like the shards it stands in for.
set -eu

GO=${GO:-go}
W1=${CHAOS_SMOKE_W1:-127.0.0.1:18091}
W2=${CHAOS_SMOKE_W2:-127.0.0.1:18092}
ADDR=${CHAOS_SMOKE_ADDR:-127.0.0.1:18090}
TMP=$(mktemp -d)
W1_PID=""
W2_PID=""
CLUSTER_PID=""

cleanup() {
    for pid in "$W1_PID" "$W2_PID" "$CLUSTER_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# A compile error must name itself, not surface later as a confusing
# "coordinator never came up" — so each build is guarded individually
# rather than left to set -e.
echo "chaos-smoke: building binaries..."
for pkg in disthd-serve disthd-cluster hdbench; do
    if ! $GO build -o "$TMP/$pkg" "./cmd/$pkg"; then
        echo "chaos-smoke: FAILED to build ./cmd/$pkg — fix the compile error above" >&2
        exit 1
    fi
done

DEMO="-demo PAMAP2 -dim 128 -scale 0.05 -seed 42"

echo "chaos-smoke: starting workers on $W1 and $W2..."
"$TMP/disthd-serve" -addr "$W1" $DEMO >"$TMP/w1.log" 2>&1 &
W1_PID=$!
"$TMP/disthd-serve" -addr "$W2" $DEMO >"$TMP/w2.log" 2>&1 &
W2_PID=$!

echo "chaos-smoke: starting coordinator on $ADDR..."
"$TMP/disthd-cluster" -addr "$ADDR" -workers "$W1,$W2" $DEMO \
    -call-timeout 250ms -max-attempts 3 \
    -breaker-threshold 3 -breaker-open-for 500ms -probe-interval 100ms \
    >"$TMP/cluster.log" 2>&1 &
CLUSTER_PID=$!

# Wait for the coordinator to finish training its fallback and listen
# (single-core hosts train the three demo models back to back; hdbench's
# own /healthz poll only covers the last stretch).
i=0
while ! grep -q "coordinating" "$TMP/cluster.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 600 ] || ! kill -0 "$CLUSTER_PID" 2>/dev/null; then
        echo "chaos-smoke: coordinator never came up; log:"
        cat "$TMP/cluster.log"
        exit 1
    fi
    sleep 0.1
done

echo "chaos-smoke: driving load, then SIGKILLing worker 1 mid-run..."
"$TMP/hdbench" -chaos -http "$ADDR" -dataset PAMAP2 -loadgen-scale 0.05 \
    -duration 4s -concurrency 2 >"$TMP/chaos.log" 2>&1 &
BENCH_PID=$!
sleep 2
kill -9 "$W1_PID" 2>/dev/null || true
W1_PID=""
STATUS=0
wait "$BENCH_PID" || STATUS=$?
cat "$TMP/chaos.log"
if [ "$STATUS" -ne 0 ]; then
    echo "chaos-smoke: load run FAILED (dropped requests?); coordinator log:"
    cat "$TMP/cluster.log"
    exit 1
fi

echo "chaos-smoke: draining coordinator with SIGTERM..."
kill -TERM "$CLUSTER_PID"
STATUS=0
wait "$CLUSTER_PID" || STATUS=$?
CLUSTER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "chaos-smoke: coordinator exited with status $STATUS; log:"
    cat "$TMP/cluster.log"
    exit 1
fi
if ! grep -q "bye:" "$TMP/cluster.log"; then
    echo "chaos-smoke: coordinator never reported a completed drain; log:"
    cat "$TMP/cluster.log"
    exit 1
fi
echo "chaos-smoke: OK (worker killed mid-load, 0 dropped, clean drain)"
