#!/bin/sh
# drift_http_smoke.sh — the live-HTTP driftgen CI smoke: build the real
# binaries, start disthd-serve with the gated learner attached, run one
# CI-sized `hdbench -driftgen -quick -http` pass against it over loopback
# (the driftgen side polls /healthz, so no readiness dance is needed here),
# then SIGTERM the server and assert the drain completed cleanly (the
# "bye:" line only prints after every accepted micro-batch is answered).
#
# The server's -demo/-dim must match driftgen's -quick shape (PAMAP2,
# D=128) so the benchmark can install its own base model via /swap.
set -eu

GO=${GO:-go}
ADDR=${DRIFT_SMOKE_ADDR:-127.0.0.1:18086}
TMP=$(mktemp -d)
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -9 "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# A compile error must name itself, not surface later as a confusing
# readiness timeout — so each build is guarded individually rather than
# left to set -e.
echo "drift-http-smoke: building binaries..."
for pkg in disthd-serve hdbench; do
    if ! $GO build -o "$TMP/$pkg" "./cmd/$pkg"; then
        echo "drift-http-smoke: FAILED to build ./cmd/$pkg — fix the compile error above" >&2
        exit 1
    fi
done

echo "drift-http-smoke: starting disthd-serve on $ADDR..."
"$TMP/disthd-serve" -addr "$ADDR" -demo PAMAP2 -dim 128 -scale 0.05 \
    -learn -auto-retrain -learn-window 128 -learn-recent 32 \
    -drift-threshold 0.10 -retrain-iters 3 -retrain-cooldown 1ms \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

echo "drift-http-smoke: running hdbench -driftgen -quick -http $ADDR..."
if ! "$TMP/hdbench" -driftgen -quick -http "$ADDR" -drift-kinds shift; then
    echo "drift-http-smoke: driftgen FAILED; server log:"
    cat "$TMP/serve.log"
    exit 1
fi

echo "drift-http-smoke: draining server with SIGTERM..."
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "drift-http-smoke: server exited with status $STATUS; log:"
    cat "$TMP/serve.log"
    exit 1
fi
if ! grep -q "bye:" "$TMP/serve.log"; then
    echo "drift-http-smoke: server never reported a completed drain; log:"
    cat "$TMP/serve.log"
    exit 1
fi
echo "drift-http-smoke: OK (clean SIGTERM drain)"
