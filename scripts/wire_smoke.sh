#!/bin/sh
# wire_smoke.sh — the binary frame protocol CI smoke at the process
# level: build the real binaries, start a disthd-serve, drive it with
# `hdbench -loadgen -http ... -wire binary` (hdbench exits nonzero if any
# request fails or answers the wrong number of classes) plus a short
# `-wire json` pass over the same process, check that /stats counted
# requests under both formats, then SIGTERM the server and assert a clean
# drain (the "bye:" line only prints after every accepted micro-batch is
# answered).
#
# The server and the load generator train the same deterministic demo
# model (-demo PAMAP2 -dim 128 -scale 0.05 -seed 42), so the feature
# widths agree on both ends.
set -eu

GO=${GO:-go}
ADDR=${WIRE_SMOKE_ADDR:-127.0.0.1:18095}
TMP=$(mktemp -d)
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -9 "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "wire-smoke: building binaries..."
for pkg in disthd-serve hdbench; do
    if ! $GO build -o "$TMP/$pkg" "./cmd/$pkg"; then
        echo "wire-smoke: FAILED to build ./cmd/$pkg — fix the compile error above" >&2
        exit 1
    fi
done

echo "wire-smoke: starting disthd-serve on $ADDR..."
"$TMP/disthd-serve" -addr "$ADDR" -demo PAMAP2 -dim 128 -scale 0.05 \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

for wire in binary json; do
    echo "wire-smoke: running hdbench -loadgen -http $ADDR -wire $wire..."
    if ! "$TMP/hdbench" -loadgen -http "$ADDR" -wire "$wire" \
        -dataset PAMAP2 -loadgen-scale 0.05 -concurrency 2 -duration 1s; then
        echo "wire-smoke: loadgen -wire $wire FAILED; server log:"
        cat "$TMP/serve.log"
        exit 1
    fi
done

# Both formats must have been counted by the live server.
STATS=$(curl -fsS "http://$ADDR/stats" 2>/dev/null || wget -qO- "http://$ADDR/stats")
for key in wire_binary_requests wire_json_requests; do
    case "$STATS" in
    *"\"$key\":0"*|*"\"$key\":0,"*)
        echo "wire-smoke: /stats reports $key = 0 after the $key load pass; stats: $STATS" >&2
        exit 1 ;;
    *"\"$key\":"*) ;;
    *)
        echo "wire-smoke: /stats is missing $key; stats: $STATS" >&2
        exit 1 ;;
    esac
done

echo "wire-smoke: draining server with SIGTERM..."
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "wire-smoke: server exited with status $STATUS; log:"
    cat "$TMP/serve.log"
    exit 1
fi
if ! grep -q "bye:" "$TMP/serve.log"; then
    echo "wire-smoke: server never reported a completed drain; log:"
    cat "$TMP/serve.log"
    exit 1
fi
echo "wire-smoke: OK (binary + json served, counters live, clean SIGTERM drain)"
