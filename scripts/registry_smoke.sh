#!/bin/sh
# registry_smoke.sh — the multi-tenant registry CI smoke at the process
# level: build the real binaries, boot a `disthd-serve -registry` with
# three heterogeneous boot tenants squeezed through a 2-replica pool
# (so LRU parking is forced from the first minute), then drive it with
# `hdbench -loadgen -tenants 3 -http` once over JSON and once over the
# binary frame protocol (hdbench installs three more tenants over
# PUT /t/{id} and exits nonzero if any request ultimately fails — 429s
# are retried, never dropped). Afterwards the script asserts the
# registry actually churned (evictions > 0 in /stats), proves a
# learning tenant's feedback counter survives a park/wake cycle, scrapes
# a per-tenant /t/{model}/stats, removes a tenant over DELETE, and
# SIGTERMs the server expecting a clean drain (the "bye:" line only
# prints after every tenant drained).
set -eu

GO=${GO:-go}
ADDR=${REGISTRY_SMOKE_ADDR:-127.0.0.1:18096}
TMP=$(mktemp -d)
SERVE_PID=""

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -9 "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fetch() {
    curl -fsS "$1" 2>/dev/null || wget -qO- "$1"
}

put_json() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X PUT -H 'Content-Type: application/json' -d "$2" "$1"
    else
        wget -qO- --method=PUT --header='Content-Type: application/json' --body-data="$2" "$1"
    fi
}

post_json() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$1"
    else
        wget -qO- --header='Content-Type: application/json' --post-data="$2" "$1"
    fi
}

echo "registry-smoke: building binaries..."
for pkg in disthd-serve hdbench; do
    if ! $GO build -o "$TMP/$pkg" "./cmd/$pkg"; then
        echo "registry-smoke: FAILED to build ./cmd/$pkg — fix the compile error above" >&2
        exit 1
    fi
done

echo "registry-smoke: starting disthd-serve -registry on $ADDR (pool 2, 3 boot tenants)..."
"$TMP/disthd-serve" -registry -addr "$ADDR" -pool 2 \
    -tenant 'alpha=UCIHAR,dim=64,scale=0.05,iterations=2' \
    -tenant 'beta=ISOLET,dim=96,scale=0.05,iterations=2' \
    -tenant 'gamma=DIABETES,dim=48,scale=0.05,iterations=2' \
    >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the registry to finish boot training and start listening.
i=0
until MODELS=$(fetch "http://$ADDR/models" 2>/dev/null); do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "registry-smoke: server never became ready; log:" >&2
        cat "$TMP/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
for id in alpha beta gamma; do
    case "$MODELS" in
    *"\"$id\""*) ;;
    *)
        echo "registry-smoke: GET /models is missing boot tenant $id: $MODELS" >&2
        exit 1 ;;
    esac
done

# Mixed-workload traffic in both wire formats: hdbench installs t0..t2
# over PUT /t/{id} (now 6 tenants through the 2-slot pool) and sprays
# /t/{id}/predict_batch, retrying 429 backpressure — zero drops allowed.
for wire in json binary; do
    echo "registry-smoke: hdbench -loadgen -tenants 3 -http $ADDR -wire $wire..."
    if ! "$TMP/hdbench" -loadgen -tenants 3 -http "$ADDR" -wire "$wire" \
        -dim 64 -loadgen-scale 0.05 -concurrency 4 -duration 1s; then
        echo "registry-smoke: tenants loadgen -wire $wire FAILED; server log:"
        cat "$TMP/serve.log"
        exit 1
    fi
done

# Six tenants through two replica slots must have churned the pool.
STATS=$(fetch "http://$ADDR/stats")
case "$STATS" in
*'"evictions":0,'*|*'"evictions":0}'*)
    echo "registry-smoke: /stats reports zero evictions despite pool 2 < 6 tenants: $STATS" >&2
    exit 1 ;;
*'"evictions":'*) ;;
*)
    echo "registry-smoke: /stats is missing the evictions gauge: $STATS" >&2
    exit 1 ;;
esac

# Per-tenant stats answer without waking a parked tenant.
TSTATS=$(fetch "http://$ADDR/t/alpha/stats")
case "$TSTATS" in
*'"id":"alpha"'*) ;;
*)
    echo "registry-smoke: GET /t/alpha/stats did not answer for alpha: $TSTATS" >&2
    exit 1 ;;
esac

# Learner state survives eviction: install a learning tenant, feed it
# labeled samples, park it by waking other tenants through the 2-slot
# pool, and the per-tenant /stats feedback counter must (a) stay visible
# while parked and (b) continue — never reset to zero — after the wake.
echo "registry-smoke: learner park/wake continuity..."
put_json "http://$ADDR/t/lrn" \
    '{"demo":"DIABETES","dim":48,"scale":0.05,"iterations":2,"learn":true,"seed":7}' >/dev/null
TSTATS=$(fetch "http://$ADDR/t/lrn/stats")
FEATS=$(printf '%s' "$TSTATS" | sed -n 's/.*"features":\([0-9]*\).*/\1/p')
ROW=$(awk -v n="$FEATS" 'BEGIN{s="0";for(i=1;i<n;i++)s=s",0";print s}')
i=0
while [ "$i" -lt 5 ]; do
    post_json "http://$ADDR/t/lrn/learn" "{\"x\":[$ROW],\"label\":0}" >/dev/null
    i=$((i + 1))
done
# Two wakes of other learning tenants cycle the 2-slot pool, parking lrn
# (a zero row with label 0 is valid feedback for any tenant shape).
for id in t0 t1; do
    TS=$(fetch "http://$ADDR/t/$id/stats")
    F=$(printf '%s' "$TS" | sed -n 's/.*"features":\([0-9]*\).*/\1/p')
    R=$(awk -v n="$F" 'BEGIN{s="0";for(i=1;i<n;i++)s=s",0";print s}')
    post_json "http://$ADDR/t/$id/learn" "{\"x\":[$R],\"label\":0}" >/dev/null
done
TSTATS=$(fetch "http://$ADDR/t/lrn/stats")
case "$TSTATS" in
*'"resident":false'*) ;;
*)
    echo "registry-smoke: lrn still resident after two wakes through pool 2: $TSTATS" >&2
    exit 1 ;;
esac
case "$TSTATS" in
*'"feedback":5'*) ;;
*)
    echo "registry-smoke: parked /t/lrn/stats lost the learner gauges: $TSTATS" >&2
    exit 1 ;;
esac
# One more feedback sample wakes lrn; the counter continues at 6.
post_json "http://$ADDR/t/lrn/learn" "{\"x\":[$ROW],\"label\":0}" >/dev/null
TSTATS=$(fetch "http://$ADDR/t/lrn/stats")
case "$TSTATS" in
*'"feedback":6'*) ;;
*)
    echo "registry-smoke: learner feedback counter reset across park/wake: $TSTATS" >&2
    exit 1 ;;
esac

# DELETE drains and removes: gamma must disappear from /models.
echo "registry-smoke: DELETE /t/gamma..."
if command -v curl >/dev/null 2>&1; then
    curl -fsS -X DELETE "http://$ADDR/t/gamma" >/dev/null
else
    wget -qO- --method=DELETE "http://$ADDR/t/gamma" >/dev/null
fi
MODELS=$(fetch "http://$ADDR/models")
case "$MODELS" in
*'"gamma"'*)
    echo "registry-smoke: gamma still listed after DELETE: $MODELS" >&2
    exit 1 ;;
esac

echo "registry-smoke: draining server with SIGTERM..."
kill -TERM "$SERVE_PID"
STATUS=0
wait "$SERVE_PID" || STATUS=$?
SERVE_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "registry-smoke: server exited with status $STATUS; log:"
    cat "$TMP/serve.log"
    exit 1
fi
if ! grep -q "bye:" "$TMP/serve.log"; then
    echo "registry-smoke: server never reported a completed drain; log:"
    cat "$TMP/serve.log"
    exit 1
fi
echo "registry-smoke: OK (3 boot + 4 PUT tenants, JSON+binary learn+predict traffic, evictions observed, learner survives park/wake, per-tenant stats, DELETE drain, clean SIGTERM)"
