package disthd

import (
	"math"
	"testing"
)

// onlineFixture trains a small model and returns it with its data.
func onlineFixture(t testing.TB, seed uint64) (*Model, DataSplit, DataSplit) {
	t.Helper()
	train, test, err := SyntheticBenchmark("UCIHAR", 0.12, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	cfg.Seed = seed
	m, err := TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, train, test
}

// shiftRow returns a copy of x with a constant offset added to the leading
// third of its features — a synthetic severe drift.
func shiftRow(x []float64, offset float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for i := 0; i < len(out)/3; i++ {
		out[i] += offset
	}
	return out
}

func TestOnlineLearnerWindowBounds(t *testing.T) {
	m, _, test := onlineFixture(t, 1)
	l, err := NewOnlineLearner(m, OnlineConfig{Window: 32, RecentWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range test.X {
		if _, err := l.Observe(x, test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if l.WindowLen() != 32 {
		t.Fatalf("window holds %d samples, capacity 32", l.WindowLen())
	}
	if got, want := l.Observations(), uint64(len(test.X)); got != want {
		t.Fatalf("observations %d, want %d", got, want)
	}
	X, y := l.Window()
	if len(X) != 32 || len(y) != 32 {
		t.Fatalf("snapshot sized %d/%d", len(X), len(y))
	}
	// Sliding mode keeps the most recent samples, oldest first.
	n := len(test.X)
	for i := 0; i < 32; i++ {
		want := test.X[n-32+i]
		for j := range want {
			if X[i][j] != want[j] {
				t.Fatalf("window slot %d is not stream sample %d", i, n-32+i)
			}
		}
		if y[i] != test.Y[n-32+i] {
			t.Fatalf("window label %d mismatch", i)
		}
	}
}

func TestOnlineLearnerValidatesFeedback(t *testing.T) {
	m, _, test := onlineFixture(t, 2)
	l, err := NewOnlineLearner(m, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Observe(test.X[0][:3], 0); err == nil {
		t.Fatal("short feature vector accepted")
	}
	if _, err := l.Observe(test.X[0], -1); err == nil {
		t.Fatal("negative label accepted")
	}
	if _, err := l.Observe(test.X[0], m.Classes()); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if math.IsNaN(l.WindowAccuracy()) == false {
		t.Fatal("accuracy defined before any valid observation")
	}
	if l.WindowLen() != 0 {
		t.Fatal("rejected feedback entered the window")
	}
}

func TestOnlineLearnerDetectsDrift(t *testing.T) {
	m, _, test := onlineFixture(t, 3)
	l, err := NewOnlineLearner(m, OnlineConfig{Window: 256, RecentWindow: 32, DriftThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Clean phase: establish the baseline.
	for i := 0; i < 64; i++ {
		x := test.X[i%len(test.X)]
		if _, err := l.Observe(x, test.Y[i%len(test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	if l.DriftDetected() {
		t.Fatalf("drift flagged on clean data (baseline %.2f, window %.2f)",
			l.BaselineAccuracy(), l.WindowAccuracy())
	}
	// Severe shift: accuracy collapses, drift must fire.
	for i := 0; i < 64; i++ {
		x := shiftRow(test.X[i%len(test.X)], 6.0)
		if _, err := l.Observe(x, test.Y[i%len(test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	if !l.DriftDetected() {
		t.Fatalf("drift not detected after severe shift (baseline %.2f, window %.2f)",
			l.BaselineAccuracy(), l.WindowAccuracy())
	}
}

func TestOnlineLearnerRetrainAdapts(t *testing.T) {
	m, _, test := onlineFixture(t, 4)
	l, err := NewOnlineLearner(m, OnlineConfig{
		Window:       256,
		RecentWindow: 32,
		Retrain:      RetrainConfig{Iterations: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const offset = 4.0
	// Feed a drifted stream so the window fills with post-drift samples.
	driftOK := 0
	n := 0
	for i := range test.X {
		x := shiftRow(test.X[i], offset)
		ok, err := l.Observe(x, test.Y[i])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			driftOK++
		}
		n++
	}
	before := float64(driftOK) / float64(n)

	next, err := l.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if next == m {
		t.Fatal("Retrain returned the original model")
	}
	if l.Model() != next {
		t.Fatal("Retrain did not rebind the learner")
	}
	if l.Retrains() != 1 {
		t.Fatalf("retrain counter %d, want 1", l.Retrains())
	}
	if !math.IsNaN(l.WindowAccuracy()) {
		t.Fatal("windowed accuracy not reset after rebind")
	}

	// The retrained model must beat the stale one on the drifted
	// distribution.
	correct := 0
	for i := range test.X {
		pred, err := next.Predict(shiftRow(test.X[i], offset))
		if err != nil {
			t.Fatal(err)
		}
		if pred == test.Y[i] {
			correct++
		}
	}
	after := float64(correct) / float64(len(test.X))
	if after <= before {
		t.Fatalf("retrain did not adapt: accuracy %.3f -> %.3f on drifted data", before, after)
	}

	// The original model is untouched by the retrain.
	cleanOK := 0
	for i := range test.X {
		pred, err := m.Predict(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == test.Y[i] {
			cleanOK++
		}
	}
	if float64(cleanOK)/float64(len(test.X)) < 0.5 {
		t.Fatal("original model degraded by a detached retrain")
	}
}

func TestOnlineLearnerReservoirBounds(t *testing.T) {
	m, _, test := onlineFixture(t, 5)
	l, err := NewOnlineLearner(m, OnlineConfig{Window: 16, Reservoir: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range test.X {
		if _, err := l.Observe(x, test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if l.WindowLen() != 16 {
		t.Fatalf("reservoir holds %d, capacity 16", l.WindowLen())
	}
	X, y := l.Window()
	// Every reservoir entry must be a genuine stream sample with its label.
	for i := range X {
		found := false
		for j := range test.X {
			same := y[i] == test.Y[j]
			for k := 0; same && k < len(X[i]); k++ {
				same = X[i][k] == test.X[j][k]
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reservoir slot %d holds a sample not from the stream", i)
		}
	}
}

func TestRetrainValidatesWindow(t *testing.T) {
	m, _, test := onlineFixture(t, 6)
	if _, err := m.Retrain(nil, nil, RetrainConfig{}); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := m.Retrain(test.X[:4], test.Y[:3], RetrainConfig{}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	bad := [][]float64{make([]float64, m.Features()+1)}
	if _, err := m.Retrain(bad, []int{0}, RetrainConfig{}); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
	nan := [][]float64{make([]float64, m.Features())}
	nan[0][0] = math.NaN()
	if _, err := m.Retrain(nan, []int{0}, RetrainConfig{}); err == nil {
		t.Fatal("NaN feature accepted")
	}
	l, err := NewOnlineLearner(m, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Retrain(); err == nil {
		t.Fatal("learner retrain with empty window accepted")
	}
}
