// Command hdinspect examines a saved DistHD model: shape, per-class
// hypervector statistics, inter-class similarity structure, and the
// dimension-saliency distribution that drives regeneration — the
// debugging view an engineer wants before committing a model to a device.
//
//	hdinspect -model model.dhd
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	disthd "repro"
)

func main() {
	modelPath := flag.String("model", "", "saved model path (.dhd)")
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "hdinspect: -model is required")
		os.Exit(2)
	}
	if err := inspect(*modelPath); err != nil {
		fmt.Fprintf(os.Stderr, "hdinspect: %v\n", err)
		os.Exit(1)
	}
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := disthd.Load(f)
	if err != nil {
		return err
	}

	fmt.Printf("model: %s\n", path)
	fmt.Printf("  features: %d   dimensions: %d   classes: %d\n",
		m.Features(), m.Dim(), m.Classes())
	for _, bits := range []int{1, 8} {
		dep, err := m.Deploy(bits)
		if err != nil {
			return err
		}
		fmt.Printf("  deployed size at %d bit(s): %.1f KiB\n", bits, float64(dep.MemoryBits())/8/1024)
	}

	// Per-class hypervector norms (uneven norms indicate class imbalance
	// or saturation during training).
	fmt.Println("\nclass hypervector norms:")
	norms := make([]float64, m.Classes())
	vecs := make([][]float64, m.Classes())
	for c := 0; c < m.Classes(); c++ {
		hv, err := m.ClassHypervector(c)
		if err != nil {
			return err
		}
		vecs[c] = hv
		var s float64
		for _, v := range hv {
			s += v * v
		}
		norms[c] = math.Sqrt(s)
		fmt.Printf("  class %2d: %.3f\n", c, norms[c])
	}

	// Inter-class cosine similarity: high off-diagonal values flag
	// confusable class pairs.
	fmt.Println("\ninter-class cosine similarity (upper triangle, worst pairs first):")
	type pair struct {
		a, b int
		sim  float64
	}
	var pairs []pair
	for a := 0; a < m.Classes(); a++ {
		for b := a + 1; b < m.Classes(); b++ {
			var dot float64
			for j := range vecs[a] {
				dot += vecs[a][j] * vecs[b][j]
			}
			sim := 0.0
			if norms[a] > 0 && norms[b] > 0 {
				sim = dot / (norms[a] * norms[b])
			}
			pairs = append(pairs, pair{a, b, sim})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].sim > pairs[j].sim })
	show := len(pairs)
	if show > 8 {
		show = 8
	}
	for _, p := range pairs[:show] {
		fmt.Printf("  classes %2d-%2d: %.3f\n", p.a, p.b, p.sim)
	}

	// Saliency distribution: how much of the model's capacity is live.
	sal := m.DimensionSaliency()
	sort.Float64s(sal)
	quantile := func(q float64) float64 { return sal[int(q*float64(len(sal)-1))] }
	fmt.Println("\ndimension saliency (variance of normalized class weights):")
	fmt.Printf("  min %.2e   p25 %.2e   median %.2e   p75 %.2e   max %.2e\n",
		sal[0], quantile(0.25), quantile(0.5), quantile(0.75), sal[len(sal)-1])
	dead := 0
	for _, v := range sal {
		if v < quantile(0.5)/10 {
			dead++
		}
	}
	fmt.Printf("  ~%d of %d dimensions carry <10%% of median information\n", dead, len(sal))
	return nil
}
