// Command doccheck fails when a package exports an undocumented
// identifier — the CI guard that keeps the public surface (root package
// and serve) fully godoc'd.
//
// Usage:
//
//	doccheck <dir> [<dir>...]
//
// For every non-test Go file in each directory (no recursion), every
// exported top-level function, type, method, constant and variable must
// carry a doc comment. Violations are listed one per line and the exit
// status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <dir> [<dir>...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// check returns one "file:line: name" entry per undocumented exported
// identifier in dir's non-test files.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags exported functions and exported methods on exported
// receivers that lack a doc comment.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, string)) {
	if !d.Name.IsExported() || d.Doc.Text() != "" {
		return
	}
	if d.Recv == nil {
		report(d.Pos(), "function", d.Name.Name)
		return
	}
	recv := receiverType(d.Recv)
	if recv == "" || !ast.IsExported(recv) {
		return // method on an unexported type: not public surface
	}
	report(d.Pos(), "method", recv+"."+d.Name.Name)
}

// checkGen flags exported types, consts and vars: a group doc comment
// covers every spec in the group, otherwise each spec needs its own.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// receiverType extracts the receiver's type name, unwrapping pointers and
// generic instantiations.
func receiverType(fl *ast.FieldList) string {
	if len(fl.List) != 1 {
		return ""
	}
	t := fl.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
