// Command disthd trains, evaluates and deploys DistHD classifiers from the
// command line.
//
// Train on a CSV file (label in the last column) and save the model:
//
//	disthd train -data samples.csv -out model.dhd -dim 512 -iters 20
//
// Train on a synthetic benchmark instead of a file:
//
//	disthd train -bench UCIHAR -scale 0.35 -out model.dhd
//
// Evaluate a saved model:
//
//	disthd eval -model model.dhd -data test.csv
//
// Measure robustness of a deployment:
//
//	disthd inject -model model.dhd -bench UCIHAR -bits 1 -rate 0.10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	disthd "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "inject":
		err = cmdInject(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "disthd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  disthd train  -data FILE.csv | -bench NAME   [-out model.dhd] [-dim D] [-iters N] [-rate R] [-seed S] [-scale F]
  disthd eval   -model model.dhd  -data FILE.csv | -bench NAME [-scale F] [-seed S]
  disthd inject -model model.dhd  -data FILE.csv | -bench NAME -bits B -rate R [-trials T] [-scale F] [-seed S]`)
}

// loadData resolves the -data / -bench flags into train and test splits.
func loadData(dataPath, bench string, scale float64, seed uint64) (train, test disthd.DataSplit, err error) {
	switch {
	case dataPath != "" && bench != "":
		return train, test, fmt.Errorf("use either -data or -bench, not both")
	case dataPath != "":
		d, err := disthd.LoadCSVFile(dataPath, -1)
		if err != nil {
			return train, test, err
		}
		train, test, err = disthd.Split(d, 0.8, seed)
		if err != nil {
			return train, test, err
		}
		if err := disthd.ZScore(train, test); err != nil {
			return train, test, err
		}
		return train, test, nil
	case bench != "":
		return disthd.SyntheticBenchmark(bench, scale, seed)
	default:
		return train, test, fmt.Errorf("one of -data or -bench is required")
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "CSV training data (label last)")
	bench := fs.String("bench", "", "synthetic benchmark name (MNIST, UCIHAR, ISOLET, PAMAP2, DIABETES)")
	out := fs.String("out", "", "path to save the trained model")
	dim := fs.Int("dim", 512, "hypervector dimensionality D")
	iters := fs.Int("iters", 20, "training iterations")
	rate := fs.Float64("rate", 0.10, "regeneration rate R")
	lr := fs.Float64("lr", 0.05, "learning rate η")
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0.35, "synthetic benchmark scale")
	if err := fs.Parse(args); err != nil {
		return err
	}

	train, test, err := loadData(*data, *bench, *scale, *seed)
	if err != nil {
		return err
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = *dim
	cfg.Iterations = *iters
	cfg.RegenRate = *rate
	cfg.LearningRate = *lr
	cfg.Seed = *seed

	fmt.Printf("training DistHD: %d samples, %d features, %d classes, D=%d\n",
		train.Len(), len(train.X[0]), train.Classes, *dim)
	start := time.Now()
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained in %.2fs: %d iterations, %d dims regenerated, effective D* = %d\n",
		time.Since(start).Seconds(), m.Info.Iterations, m.Info.RegeneratedDims, m.Info.EffectiveDim)

	acc, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		return err
	}
	fmt.Printf("test accuracy: %.2f%% (%d samples)\n", 100*acc, test.Len())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			return err
		}
		fmt.Printf("model saved to %s\n", *out)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "", "saved model path")
	data := fs.String("data", "", "CSV evaluation data (label last)")
	bench := fs.String("bench", "", "synthetic benchmark name")
	seed := fs.Uint64("seed", 1, "random seed (benchmark generation)")
	scale := fs.Float64("scale", 0.35, "synthetic benchmark scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := disthd.Load(f)
	if err != nil {
		return err
	}
	_, test, err := loadData(*data, *bench, *scale, *seed)
	if err != nil {
		return err
	}
	start := time.Now()
	acc, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("accuracy: %.2f%% on %d samples (%.4fs, %.1f samples/s)\n",
		100*acc, test.Len(), elapsed, float64(test.Len())/elapsed)
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	modelPath := fs.String("model", "", "saved model path")
	data := fs.String("data", "", "CSV evaluation data (label last)")
	bench := fs.String("bench", "", "synthetic benchmark name")
	bits := fs.Int("bits", 8, "deployment precision (1, 2, 4 or 8)")
	rate := fs.Float64("rate", 0.10, "bit-flip rate")
	trials := fs.Int("trials", 5, "injection trials to average")
	seed := fs.Uint64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0.35, "synthetic benchmark scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := disthd.Load(f)
	if err != nil {
		return err
	}
	_, test, err := loadData(*data, *bench, *scale, *seed)
	if err != nil {
		return err
	}

	dep, err := m.Deploy(*bits)
	if err != nil {
		return err
	}
	clean, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		return err
	}
	fmt.Printf("deployed at %d bits (%d KiB): clean accuracy %.2f%%\n",
		*bits, dep.MemoryBits()/8/1024, 100*clean)

	var lossSum float64
	for trial := 0; trial < *trials; trial++ {
		if err := dep.Restore(); err != nil {
			return err
		}
		if err := dep.Inject(*rate, *seed+uint64(trial)*31); err != nil {
			return err
		}
		acc, err := dep.Evaluate(test.X, test.Y)
		if err != nil {
			return err
		}
		loss := clean - acc
		if loss < 0 {
			loss = 0
		}
		lossSum += loss
		fmt.Printf("  trial %d: accuracy %.2f%% (loss %.2f%%)\n", trial+1, 100*acc, 100*loss)
	}
	fmt.Printf("average quality loss at %.1f%% flips: %.2f%%\n",
		100**rate, 100*lossSum/float64(*trials))
	return nil
}
