// Command datagen materializes the synthetic benchmark datasets to CSV so
// they can be inspected, plotted, or fed to other tools.
//
//	datagen -name UCIHAR -scale 0.35 -seed 42 -outdir ./data
//
// writes ./data/UCIHAR-train.csv and ./data/UCIHAR-test.csv with the label
// in the last column (the format cmd/disthd and disthd.ReadCSV accept).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
)

func main() {
	var (
		name   = flag.String("name", "", "dataset name, or 'all'")
		scale  = flag.Float64("scale", 0.35, "dataset scale")
		seed   = flag.Uint64("seed", 42, "random seed")
		outdir = flag.String("outdir", ".", "output directory")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -name is required (MNIST, UCIHAR, ISOLET, PAMAP2, DIABETES, or all)")
		os.Exit(2)
	}
	names := []string{*name}
	if *name == "all" {
		names = nil
		for _, s := range dataset.PaperSpecs(*scale, *seed) {
			names = append(names, s.Name)
		}
	}
	for _, n := range names {
		if err := emit(n, *scale, *seed, *outdir); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

func emit(name string, scale float64, seed uint64, outdir string) error {
	train, test, err := dataset.Load(name, scale, seed)
	if err != nil {
		return err
	}
	write := func(d *dataset.Dataset, suffix string) error {
		path := filepath.Join(outdir, fmt.Sprintf("%s-%s.csv", name, suffix))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, d); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples, %d features, %d classes)\n",
			path, d.N(), d.Features(), d.Classes)
		return nil
	}
	if err := write(train, "train"); err != nil {
		return err
	}
	return write(test, "test")
}
