// Command disthd-serve runs the micro-batching inference server over a
// trained DistHD model.
//
// Usage:
//
//	disthd-serve -model model.bin -addr :8080
//	disthd-serve -demo UCIHAR -dim 512 -addr :8080   # train a demo model
//
// The server coalesces concurrent /predict calls into micro-batches and
// runs them through the zero-allocation batched-GEMM kernels; /swap
// hot-swaps the model mid-traffic from a Model.Save snapshot:
//
//	curl -X POST --data-binary @new-model.bin localhost:8080/swap
//
// Endpoints: POST /predict, POST /predict_batch, GET /healthz, GET /stats,
// POST /swap. See the serve package for the wire format, and
// `hdbench -loadgen` for the matching closed-loop load generator.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	disthd "repro"
	"repro/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		model    = flag.String("model", "", "path to a Model.Save snapshot to serve")
		demo     = flag.String("demo", "", "train a demo model on this synthetic benchmark (e.g. UCIHAR) instead of loading one")
		dim      = flag.Int("dim", 512, "hypervector dimensionality for -demo")
		scale    = flag.Float64("scale", 0.2, "dataset scale for -demo")
		seed     = flag.Uint64("seed", 42, "random seed for -demo")
		maxBatch = flag.Int("max-batch", 64, "flush a micro-batch at this many rows")
		minFill  = flag.Int("min-fill", 1, "linger up to -max-delay for this many rows before flushing")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "deadline for a lingering micro-batch")
		replicas = flag.Int("replicas", 0, "serving replicas (0 = GOMAXPROCS)")
	)
	flag.Parse()

	m, err := loadModel(*model, *demo, *dim, *scale, *seed)
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}
	log.Printf("serving model: %d features, D=%d, %d classes", m.Features(), m.Dim(), m.Classes())

	srv, err := serve.New(m, serve.Options{
		MaxBatch: *maxBatch,
		MinFill:  *minFill,
		MaxDelay: *maxDelay,
		Replicas: *replicas,
	})
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("draining...")
		if err := srv.Close(); err != nil {
			log.Printf("disthd-serve: shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (max-batch=%d min-fill=%d max-delay=%v)",
		*addr, *maxBatch, *minFill, *maxDelay)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("disthd-serve: %v", err)
	}
	log.Printf("bye: %+v", srv.Batcher().Stats())
}

// loadModel reads a snapshot from disk or trains a demo model.
func loadModel(path, demo string, dim int, scale float64, seed uint64) (*disthd.Model, error) {
	switch {
	case path != "" && demo != "":
		return nil, fmt.Errorf("-model and -demo are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return disthd.Load(f)
	case demo != "":
		train, _, err := disthd.SyntheticBenchmark(demo, scale, seed)
		if err != nil {
			return nil, err
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = dim
		cfg.Seed = seed
		log.Printf("training demo model on %s (scale %.2f, D=%d)...", demo, scale, dim)
		return disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	default:
		return nil, fmt.Errorf("need -model <file> or -demo <benchmark> (one of %v)", disthd.BenchmarkNames())
	}
}
