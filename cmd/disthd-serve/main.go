// Command disthd-serve runs the micro-batching inference server over a
// trained DistHD model.
//
// Usage:
//
//	disthd-serve -model model.bin -addr :8080
//	disthd-serve -demo UCIHAR -dim 512 -addr :8080   # train a demo model
//	disthd-serve -demo UCIHAR -learn -auto-retrain   # drift-adaptive server
//	disthd-serve -demo PAMAP2 -dim 2048 -quantize 1bit  # packed 1-bit tier
//
// -quantize 1bit deploys the bitpacked inference tier: the f32 model is
// trained (or loaded) first, sign-quantized, and — when -demo provides a
// test split to judge on — published only if the packed tier's accuracy
// stays within -quantize-margin of the f32 champion's (the same
// champion/challenger gate POST /quantize applies at runtime; a rejected
// quantization keeps the f32 champion serving and says so). A -model
// snapshot has no holdout, so it publishes ungated with a warning — or
// just ship a version-2 (packed) snapshot, which serves quantized as-is.
//
// The server coalesces concurrent /predict calls into micro-batches and
// runs them through the zero-allocation batched-GEMM kernels; /swap
// hot-swaps the model mid-traffic from a Model.Save snapshot:
//
//	curl -X POST --data-binary @new-model.bin localhost:8080/swap
//
// With -learn, the server also accepts labeled feedback and closes the
// DistHD loop online: /learn ingests {"x":[...],"label":k}, windowed
// accuracy and per-class drift attribution are tracked in /stats, and
// /retrain (or drift itself, with -auto-retrain) warm-retrains a challenger
// on the feedback window in the background — budget scaled by the measured
// drift severity — and hot-swaps it in only after it beats the serving
// incumbent on a stratified holdout (the champion/challenger gate; disable
// with -no-gate, tune with -holdout and -gate-margin, bypass one verdict
// with /retrain?force=1). Requests never wait on training, and a rejected
// challenger never serves.
//
// Endpoints: POST /predict, POST /predict_batch, GET /healthz, GET /stats,
// GET /model, POST /swap, POST /learn, POST /retrain. /predict,
// /predict_batch, and /learn speak JSON by default and the compact binary
// frame protocol (repro/serve/wire) when the request's Content-Type is
// application/x-disthd-frame — the response mirrors the request's format,
// and /stats counts requests per format; try it with
// `hdbench -loadgen -http <addr> -wire binary`. /healthz tells the
// truth: it reports "degraded" (503 with -strict-health) while the learner
// is in post-rejection backoff or a retrain is wedged past -stall-deadline,
// and GET /model exports the serving model in the /swap wire format — the
// two hooks a cluster coordinator (cmd/disthd-cluster) builds on. See the
// serve package for the wire formats, `hdbench -loadgen` for the
// closed-loop load generator, `hdbench -driftgen` for the streaming drift
// benchmark, and `hdbench -chaos` for the fault-injection load harness.
// Registry mode serves MANY models from one process:
//
//	disthd-serve -registry -pool 8 \
//	    -tenant 'voice=ISOLET,dim=1024' \
//	    -tenant 'activity=PAMAP2,dim=2048,quantize=1bit' \
//	    -tenant 'vitals=DIABETES,dim=512,learn'
//
// Each -tenant flag (repeatable; or -manifest tenants.json, a JSON array
// of install specs with an "id" field) trains one model and registers it
// in a serve/registry.Registry. Every single-model endpoint then lives at
// /t/{model}/... per tenant, the first tenant also answers the plain
// single-model routes (default-tenant alias), and PUT/DELETE /t/{model},
// GET /models, and the aggregate GET /stats manage the fleet at runtime.
// -pool caps the total resident serving replicas: cold tenants are parked
// LRU (scratch released, model kept) to admit hot ones, and a request
// that cannot be admitted answers 429. See the serve/registry package.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/registry"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		model    = flag.String("model", "", "path to a Model.Save snapshot to serve")
		demo     = flag.String("demo", "", "train a demo model on this synthetic benchmark (e.g. UCIHAR) instead of loading one")
		dim      = flag.Int("dim", 512, "hypervector dimensionality for -demo")
		scale    = flag.Float64("scale", 0.2, "dataset scale for -demo")
		seed     = flag.Uint64("seed", 42, "random seed for -demo and retraining")
		maxBatch = flag.Int("max-batch", 64, "flush a micro-batch at this many rows")
		minFill  = flag.Int("min-fill", 1, "linger up to -max-delay for this many rows before flushing")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "deadline for a lingering micro-batch")
		replicas = flag.Int("replicas", 0, "serving replicas (0 = GOMAXPROCS)")
		quantize = flag.String("quantize", "", "deploy a quantized inference tier (\"1bit\" = packed sign bits on XOR+popcount kernels)")
		quantMar = flag.Float64("quantize-margin", -0.02, "holdout-accuracy regression the quantized tier may cost and still publish (negative tolerates loss)")

		learn     = flag.Bool("learn", false, "enable online learning (/learn, /retrain, learner gauges in /stats)")
		learnWin  = flag.Int("learn-window", 512, "labeled-feedback window retrains draw from")
		recentWin = flag.Int("learn-recent", 64, "span of the windowed accuracy estimate")
		driftThr  = flag.Float64("drift-threshold", 0.15, "windowed-accuracy drop below baseline that flags drift (0 re-selects the default; use e.g. 0.001 for a hair trigger)")
		retrIters = flag.Int("retrain-iters", 5, "warm-retrain budget in pipeline iterations")
		autoRetr  = flag.Bool("auto-retrain", false, "retrain in the background whenever drift is detected")
		cooldown  = flag.Duration("retrain-cooldown", 10*time.Second, "minimum gap between drift-triggered retrains")
		reservoir = flag.Bool("learn-reservoir", false, "reservoir-sample the feedback stream instead of a sliding window")
		holdout   = flag.Float64("holdout", 0, "fraction of the feedback window held out for the champion/challenger gate (0 = default 0.20, negative = no holdout)")
		gateMarg  = flag.Float64("gate-margin", 0, "holdout-accuracy lead a retrained challenger needs to publish (0 = a tie publishes)")
		noGate    = flag.Bool("no-gate", false, "publish every retrain unconditionally instead of gating champion vs challenger on the holdout")
		stallDl   = flag.Duration("stall-deadline", 2*time.Minute, "background retrain age past which /healthz reports the learner wedged")
		strictHlz = flag.Bool("strict-health", false, "answer /healthz with 503 while degraded (learner backoff or wedged retrain) instead of 200 + status")

		useRegistry = flag.Bool("registry", false, "multi-tenant mode: serve every -tenant/-manifest model from one registry (/t/{model}/... routes)")
		pool        = flag.Int("pool", 0, "registry replica-pool capacity; cold tenants park LRU to fit (0 = every boot tenant stays resident)")
		manifest    = flag.String("manifest", "", "registry boot manifest: JSON array of install specs, each with an \"id\" (see -tenant for the fields)")
		tenants     tenantFlags
	)
	flag.Var(&tenants, "tenant", "registry tenant as id=DEMO[,dim=N][,scale=F][,seed=N][,iterations=N][,replicas=N][,max_batch=N][,learn][,quantize=1bit] (repeatable)")
	flag.Parse()

	if *useRegistry {
		runRegistry(*addr, *pool, *manifest, tenants)
		return
	}

	m, gateSplit, err := loadModel(*model, *demo, *dim, *scale, *seed)
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}
	if *quantize != "" {
		m, err = quantizeModel(m, *quantize, *quantMar, gateSplit)
		if err != nil {
			log.Fatalf("disthd-serve: %v", err)
		}
	}
	tier := "f32"
	if m.Quantized() {
		tier = "1bit"
	}
	log.Printf("serving model: %d features, D=%d, %d classes, %s tier", m.Features(), m.Dim(), m.Classes(), tier)

	srv, err := serve.New(m, serve.Options{
		MaxBatch: *maxBatch,
		MinFill:  *minFill,
		MaxDelay: *maxDelay,
		Replicas: *replicas,
	})
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}

	if *learn {
		lr, err := serve.NewLearner(srv.Batcher().Swapper(), serve.LearnerOptions{
			Window:          *learnWin,
			Reservoir:       *reservoir,
			RecentWindow:    *recentWin,
			DriftThreshold:  *driftThr,
			HoldoutFraction: *holdout,
			GateMargin:      *gateMarg,
			GateDisabled:    *noGate,
			Iterations:      *retrIters,
			Auto:            *autoRetr,
			Cooldown:        *cooldown,
			StallDeadline:   *stallDl,
			Seed:            *seed,
		})
		if err != nil {
			log.Fatalf("disthd-serve: %v", err)
		}
		srv.AttachLearner(lr)
		log.Printf("online learning on (window=%d drift-threshold=%.2f auto-retrain=%v gate=%v margin=%.3f)",
			*learnWin, *driftThr, *autoRetr, !*noGate, *gateMarg)
	}
	srv.SetStrictHealth(*strictHlz)

	// SIGTERM/SIGINT drain: Server.Close stops Batcher intake and flushes
	// every accepted micro-batch BEFORE shutting the HTTP listener down, so
	// no accepted request is dropped mid-batch. ListenAndServe returns as
	// soon as the shutdown begins; main must then wait for the drain to
	// finish or the process would exit with batches still in flight.
	drained := make(chan struct{})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(drained)
		<-stop
		log.Printf("draining...")
		if err := srv.Close(); err != nil {
			log.Printf("disthd-serve: shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (max-batch=%d min-fill=%d max-delay=%v)",
		*addr, *maxBatch, *minFill, *maxDelay)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("disthd-serve: %v", err)
	}
	<-drained
	log.Printf("bye: %+v", srv.Stats())
}

// loadModel reads a snapshot from disk or trains a demo model. For -demo
// it also returns the test split, which -quantize uses as the gate
// holdout; a disk snapshot has none.
func loadModel(path, demo string, dim int, scale float64, seed uint64) (*disthd.Model, disthd.DataSplit, error) {
	switch {
	case path != "" && demo != "":
		return nil, disthd.DataSplit{}, fmt.Errorf("-model and -demo are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, disthd.DataSplit{}, err
		}
		defer f.Close()
		m, err := disthd.Load(f)
		return m, disthd.DataSplit{}, err
	case demo != "":
		train, test, err := disthd.SyntheticBenchmark(demo, scale, seed)
		if err != nil {
			return nil, disthd.DataSplit{}, err
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = dim
		cfg.Seed = seed
		log.Printf("training demo model on %s (scale %.2f, D=%d)...", demo, scale, dim)
		m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		return m, test, err
	default:
		return nil, disthd.DataSplit{}, fmt.Errorf("need -model <file> or -demo <benchmark> (one of %v)", disthd.BenchmarkNames())
	}
}

// quantizeModel deploys the requested quantized tier over the f32 model m,
// gating on the holdout split when one exists. A rejected quantization
// returns the f32 champion — serving stays correct, just not packed.
func quantizeModel(m *disthd.Model, kind string, margin float64, holdout disthd.DataSplit) (*disthd.Model, error) {
	if kind != "1bit" {
		return nil, fmt.Errorf("unknown -quantize tier %q (only \"1bit\")", kind)
	}
	if m.Quantized() {
		log.Printf("model snapshot is already 1-bit packed; nothing to quantize")
		return m, nil
	}
	q, err := m.Quantize1Bit()
	if err != nil {
		return nil, err
	}
	if len(holdout.X) == 0 {
		log.Printf("WARNING: no holdout to gate on (-model snapshot); publishing the 1-bit tier ungated")
		return q, nil
	}
	v, err := disthd.NewGate(disthd.GateConfig{MinMargin: margin}).Evaluate(m, q, holdout.X, holdout.Y)
	if err != nil {
		return nil, err
	}
	log.Printf("quantize gate: f32 %.4f vs 1bit %.4f on %d held-out samples (margin %+.4f, floor %+.4f)",
		v.ChampionAccuracy, v.ChallengerAccuracy, v.HoldoutSize, v.Margin, margin)
	if !v.Publish {
		log.Printf("WARNING: 1-bit tier REJECTED by the gate; serving the f32 champion instead")
		return m, nil
	}
	log.Printf("1-bit tier published: packed classes, XOR+popcount scoring")
	return q, nil
}

// bootSpec is one registry tenant to install at boot: a registry install
// spec plus the model ID it registers under.
type bootSpec struct {
	ID string `json:"id"`
	registry.InstallSpec
}

// tenantFlags collects repeated -tenant values.
type tenantFlags []bootSpec

// String renders the accumulated flags (flag.Value).
func (t *tenantFlags) String() string {
	ids := make([]string, len(*t))
	for i, b := range *t {
		ids[i] = b.ID
	}
	return strings.Join(ids, ",")
}

// Set parses one -tenant value: "id=DEMO" followed by comma-separated
// options mirroring the PUT /t/{model} JSON install spec.
func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	id, demo, ok := strings.Cut(parts[0], "=")
	if !ok || id == "" || demo == "" {
		return fmt.Errorf("-tenant %q: want id=DEMO[,option=value...]", v)
	}
	b := bootSpec{ID: id, InstallSpec: registry.InstallSpec{Demo: demo}}
	for _, opt := range parts[1:] {
		key, val, _ := strings.Cut(opt, "=")
		var err error
		switch key {
		case "dim":
			b.Dim, err = strconv.Atoi(val)
		case "scale":
			b.Scale, err = strconv.ParseFloat(val, 64)
		case "seed":
			b.Seed, err = strconv.ParseUint(val, 10, 64)
		case "iterations":
			b.Iterations, err = strconv.Atoi(val)
		case "replicas":
			b.Replicas, err = strconv.Atoi(val)
		case "max_batch":
			b.MaxBatch, err = strconv.Atoi(val)
		case "learn":
			b.Learn = true
		case "quantize":
			b.Quantize = val
		default:
			return fmt.Errorf("-tenant %q: unknown option %q", v, key)
		}
		if err != nil {
			return fmt.Errorf("-tenant %q: option %q: %v", v, key, err)
		}
	}
	*t = append(*t, b)
	return nil
}

// loadManifest reads a JSON boot manifest: an array of install specs with
// "id" fields.
func loadManifest(path string) ([]bootSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var specs []bootSpec
	if err := json.NewDecoder(f).Decode(&specs); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return specs, nil
}

// runRegistry boots the multi-tenant server: train and install every
// boot tenant, then serve the registry HTTP surface with the same
// SIGTERM drain discipline as single-model mode.
func runRegistry(addr string, pool int, manifest string, tenants tenantFlags) {
	boot := []bootSpec(tenants)
	if manifest != "" {
		specs, err := loadManifest(manifest)
		if err != nil {
			log.Fatalf("disthd-serve: %v", err)
		}
		boot = append(boot, specs...)
	}
	if len(boot) == 0 {
		log.Fatalf("disthd-serve: -registry needs at least one -tenant or a -manifest")
	}
	if pool == 0 {
		// Default capacity holds every boot tenant resident at once.
		for _, b := range boot {
			r := b.Replicas
			if r == 0 {
				r = 1
			}
			pool += r
		}
	}
	reg, err := registry.New(pool)
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}
	for _, b := range boot {
		log.Printf("installing tenant %q: %s (scale %.2f, D=%d)...", b.ID, b.Demo, b.Scale, b.Dim)
		m, spec, err := b.Build()
		if err != nil {
			log.Fatalf("disthd-serve: tenant %q: %v", b.ID, err)
		}
		if err := reg.Install(b.ID, m, spec); err != nil {
			log.Fatalf("disthd-serve: tenant %q: %v", b.ID, err)
		}
		tier := "f32"
		if m.Quantized() {
			tier = "1bit"
		}
		log.Printf("tenant %q: %d features, D=%d, %d classes, %s tier, learn=%v",
			b.ID, m.Features(), m.Dim(), m.Classes(), tier, spec.Learner != nil)
	}
	srv := registry.NewServer(reg)

	drained := make(chan struct{})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(drained)
		<-stop
		log.Printf("draining...")
		if err := srv.Close(); err != nil {
			log.Printf("disthd-serve: shutdown: %v", err)
		}
	}()

	log.Printf("registry listening on %s (%d tenants, pool capacity %d, default tenant %q)",
		addr, len(boot), pool, reg.Default())
	if err := srv.ListenAndServe(addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("disthd-serve: %v", err)
	}
	<-drained
	log.Printf("bye: %+v", reg.Stats())
}
