// Command disthd-serve runs the micro-batching inference server over a
// trained DistHD model.
//
// Usage:
//
//	disthd-serve -model model.bin -addr :8080
//	disthd-serve -demo UCIHAR -dim 512 -addr :8080   # train a demo model
//	disthd-serve -demo UCIHAR -learn -auto-retrain   # drift-adaptive server
//
// The server coalesces concurrent /predict calls into micro-batches and
// runs them through the zero-allocation batched-GEMM kernels; /swap
// hot-swaps the model mid-traffic from a Model.Save snapshot:
//
//	curl -X POST --data-binary @new-model.bin localhost:8080/swap
//
// With -learn, the server also accepts labeled feedback and closes the
// DistHD loop online: /learn ingests {"x":[...],"label":k}, windowed
// accuracy and per-class drift attribution are tracked in /stats, and
// /retrain (or drift itself, with -auto-retrain) warm-retrains a challenger
// on the feedback window in the background — budget scaled by the measured
// drift severity — and hot-swaps it in only after it beats the serving
// incumbent on a stratified holdout (the champion/challenger gate; disable
// with -no-gate, tune with -holdout and -gate-margin, bypass one verdict
// with /retrain?force=1). Requests never wait on training, and a rejected
// challenger never serves.
//
// Endpoints: POST /predict, POST /predict_batch, GET /healthz, GET /stats,
// GET /model, POST /swap, POST /learn, POST /retrain. /healthz tells the
// truth: it reports "degraded" (503 with -strict-health) while the learner
// is in post-rejection backoff or a retrain is wedged past -stall-deadline,
// and GET /model exports the serving model in the /swap wire format — the
// two hooks a cluster coordinator (cmd/disthd-cluster) builds on. See the
// serve package for the wire format, `hdbench -loadgen` for the
// closed-loop load generator, `hdbench -driftgen` for the streaming drift
// benchmark, and `hdbench -chaos` for the fault-injection load harness.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	disthd "repro"
	"repro/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		model    = flag.String("model", "", "path to a Model.Save snapshot to serve")
		demo     = flag.String("demo", "", "train a demo model on this synthetic benchmark (e.g. UCIHAR) instead of loading one")
		dim      = flag.Int("dim", 512, "hypervector dimensionality for -demo")
		scale    = flag.Float64("scale", 0.2, "dataset scale for -demo")
		seed     = flag.Uint64("seed", 42, "random seed for -demo and retraining")
		maxBatch = flag.Int("max-batch", 64, "flush a micro-batch at this many rows")
		minFill  = flag.Int("min-fill", 1, "linger up to -max-delay for this many rows before flushing")
		maxDelay = flag.Duration("max-delay", 2*time.Millisecond, "deadline for a lingering micro-batch")
		replicas = flag.Int("replicas", 0, "serving replicas (0 = GOMAXPROCS)")

		learn     = flag.Bool("learn", false, "enable online learning (/learn, /retrain, learner gauges in /stats)")
		learnWin  = flag.Int("learn-window", 512, "labeled-feedback window retrains draw from")
		recentWin = flag.Int("learn-recent", 64, "span of the windowed accuracy estimate")
		driftThr  = flag.Float64("drift-threshold", 0.15, "windowed-accuracy drop below baseline that flags drift (0 re-selects the default; use e.g. 0.001 for a hair trigger)")
		retrIters = flag.Int("retrain-iters", 5, "warm-retrain budget in pipeline iterations")
		autoRetr  = flag.Bool("auto-retrain", false, "retrain in the background whenever drift is detected")
		cooldown  = flag.Duration("retrain-cooldown", 10*time.Second, "minimum gap between drift-triggered retrains")
		reservoir = flag.Bool("learn-reservoir", false, "reservoir-sample the feedback stream instead of a sliding window")
		holdout   = flag.Float64("holdout", 0, "fraction of the feedback window held out for the champion/challenger gate (0 = default 0.20, negative = no holdout)")
		gateMarg  = flag.Float64("gate-margin", 0, "holdout-accuracy lead a retrained challenger needs to publish (0 = a tie publishes)")
		noGate    = flag.Bool("no-gate", false, "publish every retrain unconditionally instead of gating champion vs challenger on the holdout")
		stallDl   = flag.Duration("stall-deadline", 2*time.Minute, "background retrain age past which /healthz reports the learner wedged")
		strictHlz = flag.Bool("strict-health", false, "answer /healthz with 503 while degraded (learner backoff or wedged retrain) instead of 200 + status")
	)
	flag.Parse()

	m, err := loadModel(*model, *demo, *dim, *scale, *seed)
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}
	log.Printf("serving model: %d features, D=%d, %d classes", m.Features(), m.Dim(), m.Classes())

	srv, err := serve.New(m, serve.Options{
		MaxBatch: *maxBatch,
		MinFill:  *minFill,
		MaxDelay: *maxDelay,
		Replicas: *replicas,
	})
	if err != nil {
		log.Fatalf("disthd-serve: %v", err)
	}

	if *learn {
		lr, err := serve.NewLearner(srv.Batcher().Swapper(), serve.LearnerOptions{
			Window:          *learnWin,
			Reservoir:       *reservoir,
			RecentWindow:    *recentWin,
			DriftThreshold:  *driftThr,
			HoldoutFraction: *holdout,
			GateMargin:      *gateMarg,
			GateDisabled:    *noGate,
			Iterations:      *retrIters,
			Auto:            *autoRetr,
			Cooldown:        *cooldown,
			StallDeadline:   *stallDl,
			Seed:            *seed,
		})
		if err != nil {
			log.Fatalf("disthd-serve: %v", err)
		}
		srv.AttachLearner(lr)
		log.Printf("online learning on (window=%d drift-threshold=%.2f auto-retrain=%v gate=%v margin=%.3f)",
			*learnWin, *driftThr, *autoRetr, !*noGate, *gateMarg)
	}
	srv.SetStrictHealth(*strictHlz)

	// SIGTERM/SIGINT drain: Server.Close stops Batcher intake and flushes
	// every accepted micro-batch BEFORE shutting the HTTP listener down, so
	// no accepted request is dropped mid-batch. ListenAndServe returns as
	// soon as the shutdown begins; main must then wait for the drain to
	// finish or the process would exit with batches still in flight.
	drained := make(chan struct{})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(drained)
		<-stop
		log.Printf("draining...")
		if err := srv.Close(); err != nil {
			log.Printf("disthd-serve: shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (max-batch=%d min-fill=%d max-delay=%v)",
		*addr, *maxBatch, *minFill, *maxDelay)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("disthd-serve: %v", err)
	}
	<-drained
	log.Printf("bye: %+v", srv.Batcher().Stats())
}

// loadModel reads a snapshot from disk or trains a demo model.
func loadModel(path, demo string, dim int, scale float64, seed uint64) (*disthd.Model, error) {
	switch {
	case path != "" && demo != "":
		return nil, fmt.Errorf("-model and -demo are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return disthd.Load(f)
	case demo != "":
		train, _, err := disthd.SyntheticBenchmark(demo, scale, seed)
		if err != nil {
			return nil, err
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = dim
		cfg.Seed = seed
		log.Printf("training demo model on %s (scale %.2f, D=%d)...", demo, scale, dim)
		return disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	default:
		return nil, fmt.Errorf("need -model <file> or -demo <benchmark> (one of %v)", disthd.BenchmarkNames())
	}
}
