package main

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
	"repro/serve"
)

// loadgenOptions configures the closed-loop serving load generator.
type loadgenOptions struct {
	dataset     string
	dim         int
	scale       float64
	seed        uint64
	concurrency []int
	duration    time.Duration
	maxBatch    int
	maxDelay    time.Duration
	quantize    bool
	httpTarget  string // non-empty: drive a live disthd-serve instead
	wire        string // wire format for the live target: json, binary, or binary+f32
	tenants     int    // -tenants: multi-tenant mixed-workload mode
	pool        int    // -tenants in-process: registry pool capacity (0 = tenants)
}

// parseConcurrency parses a comma-separated concurrency sweep.
func parseConcurrency(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runLoadgen trains a model, then drives it closed-loop — every virtual
// client issues one request, waits for the answer, repeats — through both
// the per-request Predict path and the micro-batching serve.Batcher, and
// prints throughput vs. concurrency with the batching speedup. With
// -quantize the sweep adds a third column: the same Batcher serving the
// 1-bit packed tier, with its speedup over the batched f32 path. This is
// the measurement behind PERF.md's serving tables.
func runLoadgen(o loadgenOptions, w io.Writer) error {
	if o.httpTarget != "" {
		return runLoadgenHTTP(o, w)
	}
	train, test, err := disthd.SyntheticBenchmark(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = o.dim
	cfg.Seed = o.seed
	fmt.Fprintf(w, "loadgen: training %s model (D=%d, %d train samples)...\n",
		o.dataset, o.dim, train.Len())
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		return err
	}
	var qm *disthd.Model
	if o.quantize {
		if qm, err = m.Quantize1Bit(); err != nil {
			return err
		}
	}

	// batcherLoop measures one closed-loop cell through a fresh Batcher
	// over the given model, returning req/s and mean batch occupancy.
	batcherLoop := func(model *disthd.Model, conc, minFill int) (float64, float64, error) {
		bat, err := serve.NewBatcher(model, serve.Options{
			MaxBatch: o.maxBatch,
			MinFill:  minFill,
			MaxDelay: o.maxDelay,
			Replicas: 1,
		})
		if err != nil {
			return 0, 0, err
		}
		rate := closedLoop(conc, o.duration, test.X, func(x []float64) error {
			_, err := bat.Predict(x)
			return err
		})
		snap := bat.Stats()
		bat.Close()
		return rate, snap.MeanBatchRows, nil
	}

	fmt.Fprintf(w, "closed-loop, %v per cell, %d query rows\n\n", o.duration, test.Len())
	if o.quantize {
		fmt.Fprintf(w, "%12s %16s %16s %10s %16s %12s %12s\n",
			"concurrency", "direct req/s", "batched req/s", "speedup", "1bit req/s", "1bit/f32", "rows/batch")
	} else {
		fmt.Fprintf(w, "%12s %16s %16s %10s %12s\n",
			"concurrency", "direct req/s", "batched req/s", "speedup", "rows/batch")
	}
	for _, conc := range o.concurrency {
		direct := closedLoop(conc, o.duration, test.X, func(x []float64) error {
			_, err := m.Predict(x)
			return err
		})

		minFill := conc / 2
		if minFill < 1 {
			minFill = 1
		}
		batched, meanRows, err := batcherLoop(m, conc, minFill)
		if err != nil {
			return err
		}
		if o.quantize {
			packed, _, err := batcherLoop(qm, conc, minFill)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%12d %16.0f %16.0f %9.2fx %16.0f %11.2fx %12.1f\n",
				conc, direct, batched, batched/direct, packed, packed/batched, meanRows)
			continue
		}
		fmt.Fprintf(w, "%12d %16.0f %16.0f %9.2fx %12.1f\n",
			conc, direct, batched, batched/direct, meanRows)
	}
	return nil
}

// lgHTTPBatch is how many rows ride one /predict_batch request in
// live-HTTP loadgen mode — big enough that the wire codec dominates the
// per-request cost, matching the PERF.md wire tables.
const lgHTTPBatch = 16

// runLoadgenHTTP drives a LIVE disthd-serve (or disthd-cluster — same
// wire surface) closed-loop over /predict_batch in the selected wire
// format. Run it once with -wire json and once with -wire binary to
// measure the frame protocol's end-to-end win on a real deployment; this
// is also the binary-wire smoke `make ci` runs via
// scripts/wire_smoke.sh.
func runLoadgenHTTP(o loadgenOptions, w io.Writer) error {
	_, test, err := disthd.SyntheticBenchmark(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	base := o.httpTarget
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 30 * time.Second}
	if err := waitReady(hc, base); err != nil {
		return err
	}

	// Pre-slice the query stream into fixed-size request batches.
	var chunks [][][]float64
	for pos := 0; pos+lgHTTPBatch <= len(test.X); pos += lgHTTPBatch {
		chunks = append(chunks, test.X[pos:pos+lgHTTPBatch])
	}
	if len(chunks) == 0 {
		return fmt.Errorf("dataset %s at scale %g has fewer than %d query rows", o.dataset, o.scale, lgHTTPBatch)
	}

	fmt.Fprintf(w, "loadgen: live target %s, wire=%s, %d rows/request, %v per cell\n\n",
		base, o.wire, lgHTTPBatch, o.duration)
	fmt.Fprintf(w, "%12s %12s %14s\n", "concurrency", "req/s", "rows/s")
	for _, conc := range o.concurrency {
		var failed atomic.Bool
		var firstErr atomic.Value
		rate := closedLoopN(conc, o.duration, len(chunks), func(i int) error {
			classes, err := postBatch(hc, base, o.wire, chunks[i])
			if err == nil && len(classes) != lgHTTPBatch {
				err = fmt.Errorf("answered %d classes for %d rows", len(classes), lgHTTPBatch)
			}
			if err != nil && !failed.Swap(true) {
				firstErr.Store(err)
			}
			return err
		})
		if failed.Load() {
			return firstErr.Load().(error)
		}
		fmt.Fprintf(w, "%12d %12.0f %14.0f\n", conc, rate, rate*lgHTTPBatch)
	}
	return nil
}

// closedLoopN runs conc clients for about d, each calling do with a
// rotating index below n, and returns calls/second.
func closedLoopN(conc int, d time.Duration, n int, do func(int) error) float64 {
	var (
		wg    sync.WaitGroup
		total atomic.Int64
		stop  atomic.Bool
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			calls := 0
			for !stop.Load() {
				if err := do((c + calls) % n); err != nil {
					break
				}
				calls++
			}
			total.Add(int64(calls))
		}(c)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

// closedLoop runs conc clients for about d and returns requests/second.
func closedLoop(conc int, d time.Duration, rows [][]float64, predict func([]float64) error) float64 {
	var (
		wg    sync.WaitGroup
		total atomic.Int64
		stop  atomic.Bool
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 0
			for !stop.Load() {
				if err := predict(rows[(c+n)%len(rows)]); err != nil {
					break
				}
				n++
			}
			total.Add(int64(n))
		}(c)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total.Load()) / elapsed.Seconds()
}
