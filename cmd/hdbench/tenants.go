package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/registry"
)

// tenantWorkload is one tenant of the mixed workload: its model spec,
// query rows with labels, and the latency samples the closed loop
// collected for it.
type tenantWorkload struct {
	id      string
	dataset string
	dim     int
	rows    [][]float64
	labels  []int // feedback labels for the learn share of the traffic

	mu        sync.Mutex
	latencies []float64 // seconds per request round trip
	served    atomic.Uint64
	learned   atomic.Uint64 // labeled feedback samples fed through /learn
	throttled atomic.Uint64 // 429 / ErrPoolExhausted retries
}

// learnEvery is the mixed workload's learn share: every learnEvery-th
// request per tenant is labeled feedback instead of a prediction, so
// every tenant carries live learner state and eviction churn exercises
// the park/wake learner-continuity path, not just model re-residency.
const learnEvery = 8

// observe records one served request's latency.
func (t *tenantWorkload) observe(d time.Duration) {
	t.served.Add(1)
	t.mu.Lock()
	t.latencies = append(t.latencies, d.Seconds())
	t.mu.Unlock()
}

// quantile returns the q-quantile of the recorded latencies in
// milliseconds (0 when nothing was recorded). Called after the loop
// stops, so the sort is safe.
func (t *tenantWorkload) quantile(q float64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.latencies) == 0 {
		return 0
	}
	sort.Float64s(t.latencies)
	i := int(q * float64(len(t.latencies)))
	if i >= len(t.latencies) {
		i = len(t.latencies) - 1
	}
	return t.latencies[i] * 1e3
}

// tenantDatasets is the dataset rotation for -tenants: every consecutive
// tenant gets a different feature width and class count, and dims cycle
// ×1/×2/×4 off -dim — the heterogeneous-shape stress the registry's
// shared pool exists for.
var tenantDatasets = []string{"UCIHAR", "ISOLET", "PAMAP2", "DIABETES", "MNIST"}

// buildTenantWorkloads trains the N tenant models (shapes staggered) and
// returns them with their registry install specs.
func buildTenantWorkloads(o loadgenOptions, w io.Writer) ([]*tenantWorkload, []*disthd.Model, error) {
	var (
		loads  []*tenantWorkload
		models []*disthd.Model
	)
	for i := 0; i < o.tenants; i++ {
		tw := &tenantWorkload{
			id:      fmt.Sprintf("t%d", i),
			dataset: tenantDatasets[i%len(tenantDatasets)],
			dim:     o.dim << (i % 3),
		}
		train, test, err := disthd.SyntheticBenchmark(tw.dataset, o.scale, o.seed+uint64(i))
		if err != nil {
			return nil, nil, err
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = tw.dim
		cfg.Seed = o.seed + uint64(i)
		fmt.Fprintf(w, "loadgen: training tenant %s on %s (D=%d, %d samples)...\n",
			tw.id, tw.dataset, tw.dim, train.Len())
		m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			return nil, nil, err
		}
		tw.rows = test.X
		tw.labels = test.Y
		loads = append(loads, tw)
		models = append(models, m)
	}
	return loads, models, nil
}

// reportTenants prints the per-tenant table and the registry churn line.
func reportTenants(w io.Writer, loads []*tenantWorkload, elapsed time.Duration,
	evictions, wakes, rejections uint64) {
	fmt.Fprintf(w, "\n%8s %10s %6s %10s %10s %10s %10s %8s %8s\n",
		"tenant", "dataset", "D", "requests", "req/s", "p50(ms)", "p99(ms)", "learns", "429s")
	for _, t := range loads {
		served := t.served.Load()
		fmt.Fprintf(w, "%8s %10s %6d %10d %10.0f %10.2f %10.2f %8d %8d\n",
			t.id, t.dataset, t.dim, served,
			float64(served)/elapsed.Seconds(), t.quantile(0.50), t.quantile(0.99),
			t.learned.Load(), t.throttled.Load())
	}
	fmt.Fprintf(w, "\nregistry churn: %d evictions, %d re-wakes, %d admission rejections\n",
		evictions, wakes, rejections)
}

// runLoadgenTenants is the -tenants mixed-workload mode: N tenants with
// heterogeneous shapes served from ONE registry, concurrent clients
// spraying requests across all of them, per-tenant latency quantiles and
// the eviction churn the shared replica pool produced. Every tenant
// carries a learner and a 1-in-learnEvery labeled-feedback share, so LRU
// churn also exercises learner park/wake continuity. In-process it
// builds the registry directly (cap it with -pool to force LRU churn);
// with -http it installs the tenants on a live `disthd-serve -registry`
// via PUT /t/{id} and drives /t/{id}/predict_batch and /t/{id}/learn in
// the -wire format, treating 429 as backpressure to retry after the
// server's Retry-After — zero requests dropped.
func runLoadgenTenants(o loadgenOptions, w io.Writer) error {
	if o.httpTarget != "" {
		return runLoadgenTenantsHTTP(o, w)
	}
	loads, models, err := buildTenantWorkloads(o, w)
	if err != nil {
		return err
	}
	pool := o.pool
	if pool == 0 {
		pool = o.tenants
	}
	reg, err := registry.New(pool)
	if err != nil {
		return err
	}
	defer reg.Close()
	for i, t := range loads {
		err := reg.Install(t.id, models[i], registry.Spec{
			Options: serve.Options{MaxBatch: o.maxBatch, MaxDelay: o.maxDelay, Replicas: 1},
			Learner: &serve.LearnerOptions{Seed: o.seed + uint64(i)},
		})
		if err != nil {
			return err
		}
	}

	conc := o.concurrency[len(o.concurrency)-1]
	fmt.Fprintf(w, "\nmixed workload: %d tenants, pool capacity %d, %d clients, %v\n",
		o.tenants, pool, conc, o.duration)
	start := time.Now()
	closedLoopN(conc, o.duration, len(loads), func(i int) error {
		t := loads[i]
		seq := int(t.served.Load() + t.learned.Load())
		x := t.rows[seq%len(t.rows)]
		learn := seq%learnEvery == learnEvery-1
		for {
			reqStart := time.Now()
			h, err := reg.Acquire(t.id)
			if errors.Is(err, registry.ErrPoolExhausted) {
				t.throttled.Add(1)
				time.Sleep(100 * time.Microsecond) // backpressure: back off, retry, never drop
				continue
			}
			if err != nil {
				return err
			}
			if learn {
				_, err = h.Server().Learner().Feed(x, t.labels[seq%len(t.labels)])
				reg.Release(h)
				if err != nil {
					return err
				}
				t.learned.Add(1)
				return nil
			}
			_, err = h.Server().Batcher().Predict(x)
			reg.Release(h)
			if err != nil {
				return err
			}
			t.observe(time.Since(reqStart))
			return nil
		}
	})
	st := reg.Stats()
	reportTenants(w, loads, time.Since(start), st.Evictions, st.Wakes, st.AdmissionRejections)
	return nil
}

// runLoadgenTenantsHTTP drives a LIVE registry server: installs t0..tN-1
// over PUT /t/{id} (JSON install specs, trained server-side), sprays
// /t/{id}/predict_batch traffic in the selected wire format, and scrapes
// the aggregate /stats for the churn gauges.
func runLoadgenTenantsHTTP(o loadgenOptions, w io.Writer) error {
	base := o.httpTarget
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 60 * time.Second}

	// Install the tenants. The server trains from the same demo datasets,
	// and we keep the local test splits as the query streams.
	var loads []*tenantWorkload
	for i := 0; i < o.tenants; i++ {
		tw := &tenantWorkload{
			id:      fmt.Sprintf("t%d", i),
			dataset: tenantDatasets[i%len(tenantDatasets)],
			dim:     o.dim << (i % 3),
		}
		_, test, err := disthd.SyntheticBenchmark(tw.dataset, o.scale, o.seed+uint64(i))
		if err != nil {
			return err
		}
		tw.rows = test.X
		tw.labels = test.Y
		spec, _ := json.Marshal(map[string]any{
			"demo": tw.dataset, "dim": tw.dim, "scale": o.scale,
			"seed": o.seed + uint64(i), "max_batch": o.maxBatch,
			"learn": true,
		})
		fmt.Fprintf(w, "loadgen: installing tenant %s (%s, D=%d) on %s...\n", tw.id, tw.dataset, tw.dim, base)
		req, err := http.NewRequest(http.MethodPut, base+"/t/"+tw.id, strings.NewReader(string(spec)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("PUT /t/%s: %d: %s", tw.id, resp.StatusCode, strings.TrimSpace(string(body)))
		}
		loads = append(loads, tw)
	}

	conc := o.concurrency[len(o.concurrency)-1]
	fmt.Fprintf(w, "\nmixed workload: %d tenants on %s, wire=%s, %d clients, %v\n",
		o.tenants, base, o.wire, conc, o.duration)
	start := time.Now()
	var failed atomic.Bool
	var firstErr atomic.Value
	closedLoopN(conc, o.duration, len(loads), func(i int) error {
		t := loads[i]
		seq := int(t.served.Load() + t.learned.Load())
		pos := seq % (len(t.rows) - lgHTTPBatch + 1)
		rows := t.rows[pos : pos+lgHTTPBatch]
		learn := seq%learnEvery == learnEvery-1
		for {
			reqStart := time.Now()
			var err error
			if learn {
				err = postLearn(hc, base+"/t/"+t.id, o.wire, t.rows[pos], t.labels[pos])
			} else {
				_, err = postBatch(hc, base+"/t/"+t.id, o.wire, rows)
			}
			if errors.Is(err, errThrottled) {
				t.throttled.Add(1)
				// Backpressure: back off for as long as the server's
				// Retry-After asks, retry, never drop.
				time.Sleep(retryAfter(err, time.Millisecond))
				continue
			}
			if err != nil {
				if !failed.Swap(true) {
					firstErr.Store(err)
				}
				return err
			}
			if learn {
				t.learned.Add(1)
				return nil
			}
			t.observe(time.Since(reqStart))
			return nil
		}
	})
	if failed.Load() {
		return firstErr.Load().(error)
	}
	elapsed := time.Since(start)

	// Scrape the aggregate registry gauges.
	var agg struct {
		Evictions  uint64 `json:"evictions"`
		Wakes      uint64 `json:"wakes"`
		Rejections uint64 `json:"admission_rejections"`
	}
	resp, err := hc.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		return err
	}
	reportTenants(w, loads, elapsed, agg.Evictions, agg.Wakes, agg.Rejections)
	return nil
}
