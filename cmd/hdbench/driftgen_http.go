package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	disthd "repro"
	"repro/internal/dataset"
	"repro/serve"
)

// driftHTTP drives a live disthd-serve process over its HTTP surface — the
// transport behind `hdbench -driftgen -http addr`. The client only speaks
// the public wire formats (/healthz, /swap, /predict_batch, /learn,
// /stats) — JSON or, with -wire binary, the frame protocol on the predict
// and learn hops — so what it measures is the whole deployed stack: wire
// codec, micro-batch coalescing, the learner behind /learn, and the
// champion/challenger gate.
type driftHTTP struct {
	base string
	wire string
	hc   *http.Client
}

// newDriftHTTP normalizes the target ("host:port" or a full URL) into a
// base URL.
func newDriftHTTP(target, wireFmt string) *driftHTTP {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	return &driftHTTP{
		base: strings.TrimRight(target, "/"),
		wire: wireFmt,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

// getJSON decodes GET path into out.
func (c *driftHTTP) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON posts v to path and decodes the answer into out when non-nil.
func (c *driftHTTP) postJSON(path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %d: %s", path, resp.StatusCode, msg)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// waitHealthy polls /healthz until the server answers (it may still be
// training its -demo model when the benchmark starts) and verifies the
// served shape matches the locally trained base model, so /swap can
// install identical weights on both sides of the comparison.
func (c *driftHTTP) waitHealthy(m *disthd.Model, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var health struct {
		Features int `json:"features"`
		Dim      int `json:"dim"`
		Classes  int `json:"classes"`
	}
	for {
		err := c.getJSON("/healthz", &health)
		if err == nil {
			if health.Features != m.Features() || health.Dim != m.Dim() || health.Classes != m.Classes() {
				return fmt.Errorf("live server serves %d features/D=%d/%d classes, benchmark model is %d/%d/%d — start disthd-serve with the matching -demo dataset and -dim",
					health.Features, health.Dim, health.Classes, m.Features(), m.Dim(), m.Classes())
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("live server at %s never became healthy: %w", c.base, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// swap installs m as the live server's serving model via POST /swap.
func (c *driftHTTP) swap(m *disthd.Model) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/swap", "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST /swap: %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// predictBatch classifies rows over the wire (in the format selected with
// -wire) and returns the round-trip latency alongside the classes.
func (c *driftHTTP) predictBatch(rows [][]float64) ([]int, time.Duration, error) {
	start := time.Now()
	classes, err := postBatch(c.hc, c.base, c.wire, rows)
	return classes, time.Since(start), err
}

// learn feeds one labeled sample through POST /learn in the selected wire
// format.
func (c *driftHTTP) learn(x []float64, label int) error {
	return postLearn(c.hc, c.base, c.wire, x, label)
}

// stats scrapes GET /stats.
func (c *driftHTTP) stats() (serve.Snapshot, error) {
	var snap serve.Snapshot
	err := c.getJSON("/stats", &snap)
	return snap, err
}

// waitIdle polls /stats until no retrain is in flight — the window-boundary
// barrier that keeps the live table stable run-to-run.
func (c *driftHTTP) waitIdle(timeout time.Duration) (serve.Snapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		snap, err := c.stats()
		if err != nil {
			return snap, err
		}
		if snap.Learner == nil {
			return snap, fmt.Errorf("live server has no learner attached — start disthd-serve with -learn")
		}
		if !snap.Learner.Retraining {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return snap, fmt.Errorf("retrain still in flight after %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// httpChunk is how many drifted samples ride one /predict_batch call — big
// enough to engage the batched kernels, small enough that per-window
// latency stays a dense signal.
const httpChunk = 16

// runDriftgenHTTP streams each drift kind through a LIVE disthd-serve
// process: the locally trained base model is installed via /swap (both
// sides of the frozen-vs-adaptive comparison then start from identical
// weights), drifted batches flow through /predict_batch (accuracy judged
// against the true labels, round-trip latency recorded), feedback — with
// any label flips — through /learn, and the learner/gate gauges are
// scraped from /stats at every window boundary. Counters printed per kind
// are deltas from that kind's start; the sliding feedback window itself
// carries across kinds on a long-lived server, as it would in production.
func runDriftgenHTTP(o driftgenOptions, base *disthd.Model, test *dataset.Dataset, w io.Writer) error {
	c := newDriftHTTP(o.httpTarget, o.wire)
	if err := c.waitHealthy(base, 30*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "live target: %s (wire=%s)\n", c.base, c.wire)
	for _, kind := range o.kinds {
		if err := driftgenKindHTTP(o, c, kind, base, test, w); err != nil {
			return err
		}
	}
	return nil
}

// driftgenKindHTTP runs one drift kind against the live server and prints
// the windowed table.
func driftgenKindHTTP(o driftgenOptions, c *driftHTTP, kind dataset.DriftKind, base *disthd.Model, test *dataset.Dataset, w io.Writer) error {
	if err := c.swap(base); err != nil {
		return err
	}
	start, err := c.stats()
	if err != nil {
		return err
	}
	if start.Learner == nil {
		return fmt.Errorf("live server has no learner attached — start disthd-serve with -learn")
	}
	retr0, acc0, rej0 := start.Learner.Retrains, start.Learner.GateAccepts, start.Learner.GateRejects

	stream, err := dataset.NewDriftStream(test, kind, o.fraction, o.severity, o.seed^0xd21f7)
	if err != nil {
		return err
	}
	samples := materialize(stream, base.Classes(), o.labelNoise, o.seed^0xf11b)
	bounds := windowBounds(len(samples), o.windows)

	fmt.Fprintf(w, "\ndrift kind: %s (live over HTTP, gate %v)\n", driftKindName(kind), start.Learner.GateEnabled)
	fmt.Fprintf(w, "%8s %10s %10s %10s %8s %8s %8s %10s\n",
		"window", "severity", "frozen", "live", "retr", "accept", "reject", "batch ms")
	var sumFrozen, sumLive float64
	var lastSnap serve.Snapshot
	for i, b := range bounds {
		var frozenOK, liveOK, n int
		var batchNS time.Duration
		var batches int
		for pos := b[0]; pos < b[1]; pos += httpChunk {
			end := pos + httpChunk
			if end > b[1] {
				end = b[1]
			}
			chunk := samples[pos:end]
			rows := make([][]float64, len(chunk))
			for j, s := range chunk {
				rows[j] = s.x
			}
			classes, lat, err := c.predictBatch(rows)
			if err != nil {
				return err
			}
			if len(classes) != len(chunk) {
				return fmt.Errorf("/predict_batch answered %d classes for %d rows", len(classes), len(chunk))
			}
			batchNS += lat
			batches++
			for j, s := range chunk {
				n++
				if classes[j] == s.label {
					liveOK++
				}
				if p, err := base.Predict(s.x); err == nil && p == s.label {
					frozenOK++
				}
				if err := c.learn(s.x, s.fed); err != nil {
					return err
				}
			}
		}
		snap, err := c.waitIdle(2 * time.Minute)
		if err != nil {
			return err
		}
		lastSnap = snap
		fa := float64(frozenOK) / float64(n)
		la := float64(liveOK) / float64(n)
		sumFrozen += fa
		sumLive += la
		fmt.Fprintf(w, "%8d %10.2f %10.3f %10.3f %8d %8d %8d %10.2f\n",
			i, samples[b[1]-1].severity, fa, la,
			snap.Learner.Retrains-retr0, snap.Learner.GateAccepts-acc0, snap.Learner.GateRejects-rej0,
			float64(batchNS.Microseconds())/float64(batches)/1e3)
	}
	nw := float64(len(bounds))
	fmt.Fprintf(w, "%8s %10s %10.3f %10.3f   retrains %d, gate accepts %d / rejects %d\n",
		"mean", "", sumFrozen/nw, sumLive/nw,
		lastSnap.Learner.Retrains-retr0, lastSnap.Learner.GateAccepts-acc0, lastSnap.Learner.GateRejects-rej0)
	if lr := lastSnap.Learner.LastRejection; lr != nil {
		fmt.Fprintf(w, "%8s last rejection: challenger %.3f vs champion %.3f (margin %+.3f, holdout %d)\n",
			"", lr.ChallengerAccuracy, lr.ChampionAccuracy, lr.Margin, lr.HoldoutSize)
	}
	return nil
}
