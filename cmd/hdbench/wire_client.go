package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/serve/wire"
)

// Wire formats the live-HTTP drivers (-loadgen/-driftgen/-chaos with
// -http) can speak to a disthd-serve or disthd-cluster target, selected
// with -wire.
const (
	wireJSON   = "json"
	wireBinary = "binary"
	// wireBinaryF32 is the internal value -wire binary -f32 resolves to:
	// request matrices ride TypeMatrixF32 frames (half the bytes of f64;
	// free accuracy-wise for the 1-bit tier, whose queries are
	// sign-quantized anyway). Responses and learn frames are unchanged.
	wireBinaryF32 = "binary+f32"
)

// errThrottled marks a 429 from a registry target's admission control —
// backpressure to retry, not a failure. Concrete 429s are returned as a
// *throttledError (which matches errThrottled under errors.Is) so retry
// loops can honor the server's Retry-After.
var errThrottled = errors.New("throttled (429): registry pool exhausted")

// throttledError is a 429 with the server's Retry-After parsed out.
type throttledError struct {
	retryAfter time.Duration // 0 when the header was absent or unparsable
}

func (e *throttledError) Error() string        { return errThrottled.Error() }
func (e *throttledError) Is(target error) bool { return target == errThrottled }

// newThrottledError captures resp's Retry-After (delta-seconds form; the
// HTTP-date form is not worth parsing for a benchmark client).
func newThrottledError(resp *http.Response) error {
	var d time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	return &throttledError{retryAfter: d}
}

// retryAfter extracts the server-requested backoff from a throttled
// error, falling back when the server did not name one.
func retryAfter(err error, fallback time.Duration) time.Duration {
	var te *throttledError
	if errors.As(err, &te) && te.retryAfter > 0 {
		return te.retryAfter
	}
	return fallback
}

// checkWire validates the -wire flag value.
func checkWire(s string) error {
	if s != wireJSON && s != wireBinary {
		return fmt.Errorf("bad -wire %q: want %s or %s", s, wireJSON, wireBinary)
	}
	return nil
}

// encodeBatch marshals rows as one /predict_batch request body in the
// given wire format, returning the payload and its content type.
func encodeBatch(wireFmt string, rows [][]float64) ([]byte, string, error) {
	switch wireFmt {
	case wireBinary:
		payload, err := wire.AppendMatrixF64(nil, rows, len(rows[0]))
		return payload, wire.ContentType, err
	case wireBinaryF32:
		payload, err := wire.AppendMatrixF32(nil, rows, len(rows[0]))
		return payload, wire.ContentType, err
	}
	payload, err := json.Marshal(map[string][][]float64{"x": rows})
	return payload, "application/json", err
}

// decodeBatch parses a /predict_batch response body in the format the
// server mirrored back.
func decodeBatch(contentType string, body []byte) ([]int, error) {
	if contentType == wire.ContentType {
		d := wire.NewDecoder(bytes.NewReader(body))
		typ, err := d.Next()
		if err != nil {
			return nil, err
		}
		if typ != wire.TypeClasses {
			return nil, fmt.Errorf("response frame %v, want classes", typ)
		}
		n, err := d.ClassCount()
		if err != nil {
			return nil, err
		}
		classes := make([]int, n)
		return classes, d.Classes(classes)
	}
	var out struct {
		Classes []int `json:"classes"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out.Classes, nil
}

// postBatch runs one /predict_batch round trip against base in wireFmt
// and returns the classes.
func postBatch(hc *http.Client, base, wireFmt string, rows [][]float64) ([]int, error) {
	payload, ct, err := encodeBatch(wireFmt, rows)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Post(base+"/predict_batch", ct, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, newThrottledError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /predict_batch: %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return decodeBatch(resp.Header.Get("Content-Type"), body)
}

// postLearn feeds one labeled sample through POST /learn in wireFmt.
func postLearn(hc *http.Client, base, wireFmt string, x []float64, label int) error {
	var payload []byte
	ct := "application/json"
	if wireFmt != wireJSON {
		payload = wire.AppendLearn(nil, x, label)
		ct = wire.ContentType
	} else {
		var err error
		if payload, err = json.Marshal(map[string]any{"x": x, "label": label}); err != nil {
			return err
		}
	}
	resp, err := hc.Post(base+"/learn", ct, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return newThrottledError(resp)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST /learn: %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
