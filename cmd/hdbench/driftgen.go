package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	disthd "repro"
	"repro/internal/dataset"
	"repro/serve"
)

// driftgenOptions configures the closed-loop streaming drift benchmark.
type driftgenOptions struct {
	dataset      string
	dim          int
	scale        float64
	seed         uint64
	kinds        []dataset.DriftKind
	windows      int
	severity     float64
	fraction     float64
	learnWindow  int
	recentWindow int
	driftThresh  float64
	retrainIters int
	trainIters   int
	quick        bool
}

// quickDefaults shrinks the run to CI-smoke size.
func (o driftgenOptions) quickDefaults() driftgenOptions {
	o.scale = 0.15
	o.dim = 128
	o.windows = 4
	o.trainIters = 6
	o.retrainIters = 3
	o.learnWindow = 128
	o.recentWindow = 32
	if len(o.kinds) > 2 {
		o.kinds = o.kinds[:2]
	}
	return o
}

// parseDriftKinds parses a comma-separated list of drift kind names.
func parseDriftKinds(s string) ([]dataset.DriftKind, error) {
	var out []dataset.DriftKind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "shift":
			out = append(out, dataset.DriftShift)
		case "scale":
			out = append(out, dataset.DriftScale)
		case "noise":
			out = append(out, dataset.DriftNoise)
		default:
			return nil, fmt.Errorf("unknown drift kind %q (want shift, scale or noise)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no drift kinds given")
	}
	return out, nil
}

// driftKindName names a kind for the report.
func driftKindName(k dataset.DriftKind) string {
	switch k {
	case dataset.DriftShift:
		return "shift"
	case dataset.DriftScale:
		return "scale"
	case dataset.DriftNoise:
		return "noise"
	default:
		return "unknown"
	}
}

// runDriftgen measures the value of drift-adaptive retraining closed-loop:
// one model is trained, then a drifting labeled stream (dataset.DriftStream
// over the test split) is served twice — once by the frozen model, once by
// the full adaptive server stack (serve.Batcher + serve.Learner with
// auto-retrain: every sample's label is fed back, drift detection triggers
// a warm pipeline retrain in the background, and the successor is hot-
// swapped in). Windowed accuracy for both is reported per stream window.
// In-flight retrains are awaited at window boundaries so the table is
// stable run-to-run; production serving has no such barrier.
func runDriftgen(o driftgenOptions, w io.Writer) error {
	if o.quick {
		o = o.quickDefaults()
	}
	train, test, err := dataset.Load(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	if o.windows < 1 || test.N()/o.windows < 1 {
		return fmt.Errorf("stream of %d samples cannot fill %d evaluation windows; lower -drift-windows or raise -drift-scale", test.N(), o.windows)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = o.dim
	cfg.Seed = o.seed
	cfg.Iterations = o.trainIters
	fmt.Fprintf(w, "driftgen: training %s model (D=%d, %d train samples, %d iterations)...\n",
		o.dataset, o.dim, train.N(), o.trainIters)
	trainX := make([][]float64, train.N())
	for i := range trainX {
		trainX[i] = train.X.Row(i)
	}
	base, err := disthd.TrainWithConfig(trainX, train.Y, train.Classes, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "stream: %d samples, %d windows, severity 0→%.1f over %.0f%% of features\n",
		test.N(), o.windows, o.severity, 100*o.fraction)

	for _, kind := range o.kinds {
		if err := driftgenKind(o, kind, base, test, w); err != nil {
			return err
		}
	}
	return nil
}

// driftgenKind streams one DriftKind through the frozen and adaptive
// serving paths and prints the windowed comparison.
func driftgenKind(o driftgenOptions, kind dataset.DriftKind, base *disthd.Model, test *dataset.Dataset, w io.Writer) error {
	stream, err := dataset.NewDriftStream(test, kind, o.fraction, o.severity, o.seed^0xd21f7)
	if err != nil {
		return err
	}

	bat, err := serve.NewBatcher(base, serve.Options{MaxBatch: 32, Replicas: 1})
	if err != nil {
		return err
	}
	defer bat.Close()
	learner, err := serve.NewLearner(bat.Swapper(), serve.LearnerOptions{
		Window:         o.learnWindow,
		RecentWindow:   o.recentWindow,
		DriftThreshold: o.driftThresh,
		Iterations:     o.retrainIters,
		Auto:           true,
		Cooldown:       time.Millisecond,
		Seed:           o.seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\ndrift kind: %s\n", driftKindName(kind))
	fmt.Fprintf(w, "%8s %10s %14s %16s %10s %10s\n",
		"window", "severity", "frozen acc", "adaptive acc", "retrains", "drift")

	winLen := stream.Len() / o.windows
	var sumFrozen, sumAdaptive float64
	var adaptiveWins int
	pos := 0
	for win := 0; win < o.windows; win++ {
		var frozenOK, adaptiveOK, n int
		for ; n < winLen || (win == o.windows-1 && stream.Remaining() > 0); n++ {
			x, label, ok := stream.Next()
			if !ok {
				break
			}
			if p, err := base.Predict(x); err == nil && p == label {
				frozenOK++
			}
			p, err := bat.Predict(x)
			if err != nil {
				return err
			}
			if p == label {
				adaptiveOK++
			}
			if _, err := learner.Feed(x, label); err != nil {
				return err
			}
		}
		pos += n
		// Let an in-flight retrain publish before the next window so the
		// table is deterministic-ish; serving continues during retrains in
		// production.
		learner.Wait()
		snap := learner.Snapshot()
		fa := float64(frozenOK) / float64(n)
		aa := float64(adaptiveOK) / float64(n)
		sumFrozen += fa
		sumAdaptive += aa
		if aa > fa {
			adaptiveWins++
		}
		fmt.Fprintf(w, "%8d %10.2f %14.3f %16.3f %10d %10v\n",
			win, stream.Severity(pos-1), fa, aa, snap.Retrains, snap.Drift)
	}
	fmt.Fprintf(w, "%8s %10s %14.3f %16.3f   adaptive wins %d/%d windows\n",
		"mean", "", sumFrozen/float64(o.windows), sumAdaptive/float64(o.windows),
		adaptiveWins, o.windows)
	return nil
}
