package main

import (
	"fmt"
	"io"
	"strings"

	disthd "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/serve"
)

// driftgenOptions configures the closed-loop streaming drift benchmark.
type driftgenOptions struct {
	dataset      string
	dim          int
	scale        float64
	seed         uint64
	kinds        []dataset.DriftKind
	windows      int
	severity     float64
	fraction     float64
	labelNoise   float64
	learnWindow  int
	recentWindow int
	driftThresh  float64
	holdout      float64
	gateMargin   float64
	retrainIters int
	trainIters   int
	httpTarget   string
	wire         string // wire format for the live target: json or binary
	quantize     bool
	quick        bool
}

// quickDefaults shrinks the run to CI-smoke size.
func (o driftgenOptions) quickDefaults() driftgenOptions {
	o.scale = 0.15
	o.dim = 128
	o.windows = 4
	o.trainIters = 6
	o.retrainIters = 3
	o.learnWindow = 128
	o.recentWindow = 32
	if len(o.kinds) > 2 {
		o.kinds = o.kinds[:2]
	}
	return o
}

// parseDriftKinds parses a comma-separated list of drift kind names.
func parseDriftKinds(s string) ([]dataset.DriftKind, error) {
	var out []dataset.DriftKind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "shift":
			out = append(out, dataset.DriftShift)
		case "scale":
			out = append(out, dataset.DriftScale)
		case "noise":
			out = append(out, dataset.DriftNoise)
		default:
			return nil, fmt.Errorf("unknown drift kind %q (want shift, scale or noise)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no drift kinds given")
	}
	return out, nil
}

// driftKindName names a kind for the report.
func driftKindName(k dataset.DriftKind) string {
	switch k {
	case dataset.DriftShift:
		return "shift"
	case dataset.DriftScale:
		return "scale"
	case dataset.DriftNoise:
		return "noise"
	default:
		return "unknown"
	}
}

// driftSample is one materialized stream element: the drifted features, the
// TRUE label accuracy is judged against, and the label actually fed back
// through /learn — which differs when -drift-label-noise flips it,
// simulating a noisy teacher whose bad feedback a publication gate must
// survive.
type driftSample struct {
	x        []float64
	label    int
	fed      int
	severity float64
}

// materialize drains a DriftStream into a slice so every serving path
// (frozen, ungated adaptive, gated adaptive, live HTTP) consumes the
// IDENTICAL sample sequence — DriftNoise and label flips draw from RNGs, so
// streaming each path separately would compare different data.
func materialize(stream *dataset.DriftStream, classes int, labelNoise float64, seed uint64) []driftSample {
	flip := rng.New(seed)
	out := make([]driftSample, 0, stream.Len())
	for i := 0; ; i++ {
		x, label, ok := stream.Next()
		if !ok {
			break
		}
		s := driftSample{x: x, label: label, fed: label, severity: stream.Severity(i)}
		if labelNoise > 0 && flip.Float64() < labelNoise && classes > 1 {
			s.fed = (label + 1 + flip.Intn(classes-1)) % classes
		}
		out = append(out, s)
	}
	return out
}

// windowBounds splits n samples into `windows` evaluation windows; the last
// window absorbs the remainder.
func windowBounds(n, windows int) [][2]int {
	winLen := n / windows
	bounds := make([][2]int, windows)
	for w := 0; w < windows; w++ {
		bounds[w] = [2]int{w * winLen, (w + 1) * winLen}
	}
	bounds[windows-1][1] = n
	return bounds
}

// adaptiveResult carries one adaptive run's per-window measurements;
// counter fields are cumulative at each window boundary.
type adaptiveResult struct {
	accs     []float64
	retrains []uint64
	rejects  []uint64
}

// mean returns the mean windowed accuracy.
func (r adaptiveResult) mean() float64 {
	var s float64
	for _, a := range r.accs {
		s += a
	}
	return s / float64(len(r.accs))
}

// trainBase fits the clean starting model every serving path shares.
func trainBase(o driftgenOptions, train *dataset.Dataset, w io.Writer) (*disthd.Model, error) {
	cfg := disthd.DefaultConfig()
	cfg.Dim = o.dim
	cfg.Seed = o.seed
	cfg.Iterations = o.trainIters
	fmt.Fprintf(w, "driftgen: training %s model (D=%d, %d train samples, %d iterations)...\n",
		o.dataset, o.dim, train.N(), o.trainIters)
	trainX := make([][]float64, train.N())
	for i := range trainX {
		trainX[i] = train.X.Row(i)
	}
	return disthd.TrainWithConfig(trainX, train.Y, train.Classes, cfg)
}

// runDriftgen measures the value of drift-adaptive retraining closed-loop:
// one model is trained, then a drifting labeled stream (dataset.DriftStream
// over the test split, optionally with flipped feedback labels) is served
// three times — by the frozen model, by the ungated adaptive stack (every
// retrain publishes, the PR 3 behavior), and by the gated adaptive stack
// (challengers must beat the incumbent on the stratified holdout). Windowed
// accuracy for all three is reported per stream window, with the gate's
// accept/reject counts alongside. With -http the adaptive side is a LIVE
// disthd-serve process driven over HTTP instead (runDriftgenHTTP).
// In-flight retrains are awaited at window boundaries so the table is
// stable run-to-run; production serving has no such barrier.
func runDriftgen(o driftgenOptions, w io.Writer) error {
	if o.quick {
		o = o.quickDefaults()
	}
	train, test, err := dataset.Load(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	if o.windows < 1 || test.N()/o.windows < 1 {
		return fmt.Errorf("stream of %d samples cannot fill %d evaluation windows; lower -drift-windows or raise -drift-scale", test.N(), o.windows)
	}
	base, err := trainBase(o, train, w)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stream: %d samples, %d windows, severity 0→%.1f over %.0f%% of features, label noise %.0f%%\n",
		test.N(), o.windows, o.severity, 100*o.fraction, 100*o.labelNoise)

	if o.httpTarget != "" {
		return runDriftgenHTTP(o, base, test, w)
	}
	for _, kind := range o.kinds {
		if err := driftgenKind(o, kind, base, test, w); err != nil {
			return err
		}
	}
	return nil
}

// adaptiveRun streams the materialized samples through a fresh
// Batcher+Learner stack (gated or not) and measures windowed accuracy
// against the TRUE labels while feeding back the (possibly flipped) fed
// labels. Retrains are triggered at DETERMINISTIC stream positions — the
// drift flag is checked after every feed, attempts are rate-limited to one
// per recentWindow samples, and each is awaited inline — so the gated and
// ungated tables compare identical retrain schedules instead of goroutine
// scheduling noise, and the whole table is reproducible run-to-run.
// Production serving uses the background -auto-retrain path instead; the
// live-HTTP mode (-http) and the serve race tests exercise that one.
func adaptiveRun(o driftgenOptions, base *disthd.Model, samples []driftSample, bounds [][2]int, gated bool) (adaptiveResult, error) {
	var res adaptiveResult
	bat, err := serve.NewBatcher(base, serve.Options{MaxBatch: 32, Replicas: 1})
	if err != nil {
		return res, err
	}
	defer bat.Close()
	learner, err := serve.NewLearner(bat.Swapper(), serve.LearnerOptions{
		Window:          o.learnWindow,
		RecentWindow:    o.recentWindow,
		DriftThreshold:  o.driftThresh,
		HoldoutFraction: o.holdout,
		GateMargin:      o.gateMargin,
		GateDisabled:    !gated,
		Iterations:      o.retrainIters,
		Seed:            o.seed,
	})
	if err != nil {
		return res, err
	}
	lastAttempt := -(1 << 30)
	spacing := o.recentWindow
	pos := 0
	for _, b := range bounds {
		ok := 0
		for _, s := range samples[b[0]:b[1]] {
			p, err := bat.Predict(s.x)
			if err != nil {
				return res, err
			}
			if p == s.label {
				ok++
			}
			fr, err := learner.Feed(s.x, s.fed)
			if err != nil {
				return res, err
			}
			if fr.Drift && pos-lastAttempt >= spacing {
				lastAttempt = pos
				before := learner.Snapshot().Retrains
				if started, _ := learner.Retrain(false); started {
					learner.Wait()
				}
				// A publish re-freezes the accuracy baseline, so the next
				// attempt waits for the full estimator span; a rejection
				// leaves the estimates running and may retry (with a fresh
				// regeneration seed) once half the span has turned over.
				if learner.Snapshot().Retrains > before {
					spacing = o.recentWindow
				} else {
					spacing = o.recentWindow / 2
				}
			}
			pos++
		}
		snap := learner.Snapshot()
		res.accs = append(res.accs, float64(ok)/float64(b[1]-b[0]))
		res.retrains = append(res.retrains, snap.Retrains)
		res.rejects = append(res.rejects, snap.GateRejects)
	}
	return res, nil
}

// frozenRun measures a non-adapting model's windowed accuracy over the
// stream — the control arm, also used for the frozen 1-bit tier (which is
// frozen by construction: quantized models refuse online updates).
func frozenRun(m *disthd.Model, samples []driftSample, bounds [][2]int) adaptiveResult {
	var res adaptiveResult
	for _, b := range bounds {
		ok := 0
		for _, s := range samples[b[0]:b[1]] {
			if p, err := m.Predict(s.x); err == nil && p == s.label {
				ok++
			}
		}
		res.accs = append(res.accs, float64(ok)/float64(b[1]-b[0]))
	}
	return res
}

// driftgenKind streams one DriftKind through the frozen, ungated-adaptive
// and gated-adaptive serving paths and prints the windowed comparison.
// With -quantize a frozen-1bit column rides along: the packed tier cannot
// adapt, so its decay under drift is exactly what an edge deployment
// trades for the packed footprint.
func driftgenKind(o driftgenOptions, kind dataset.DriftKind, base *disthd.Model, test *dataset.Dataset, w io.Writer) error {
	stream, err := dataset.NewDriftStream(test, kind, o.fraction, o.severity, o.seed^0xd21f7)
	if err != nil {
		return err
	}
	samples := materialize(stream, base.Classes(), o.labelNoise, o.seed^0xf11b)
	bounds := windowBounds(len(samples), o.windows)

	frozen := frozenRun(base, samples, bounds)
	var frozen1b adaptiveResult
	if o.quantize {
		q, err := base.Quantize1Bit()
		if err != nil {
			return err
		}
		frozen1b = frozenRun(q, samples, bounds)
	}
	ungated, err := adaptiveRun(o, base, samples, bounds, false)
	if err != nil {
		return err
	}
	gated, err := adaptiveRun(o, base, samples, bounds, true)
	if err != nil {
		return err
	}

	q1b := func(i int) string {
		if !o.quantize {
			return ""
		}
		return fmt.Sprintf(" %10.3f", frozen1b.accs[i])
	}
	fmt.Fprintf(w, "\ndrift kind: %s\n", driftKindName(kind))
	q1bHead := ""
	if o.quantize {
		q1bHead = fmt.Sprintf(" %10s", "froz-1bit")
	}
	fmt.Fprintf(w, "%8s %10s %10s%s %10s %10s %9s %8s %8s\n",
		"window", "severity", "frozen", q1bHead, "ungated", "gated", "ug-retr", "g-retr", "g-rej")
	for i, b := range bounds {
		fmt.Fprintf(w, "%8d %10.2f %10.3f%s %10.3f %10.3f %9d %8d %8d\n",
			i, samples[b[1]-1].severity, frozen.accs[i], q1b(i), ungated.accs[i], gated.accs[i],
			ungated.retrains[i], gated.retrains[i], gated.rejects[i])
	}
	verdict := "gated >= ungated"
	if gated.mean() < ungated.mean() {
		verdict = "GATED BELOW UNGATED"
	}
	q1bMean := ""
	if o.quantize {
		q1bMean = fmt.Sprintf(" %10.3f", frozen1b.mean())
	}
	fmt.Fprintf(w, "%8s %10s %10.3f%s %10.3f %10.3f   %s\n",
		"mean", "", frozen.mean(), q1bMean, ungated.mean(), gated.mean(), verdict)
	return nil
}
