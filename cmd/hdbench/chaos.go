package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	disthd "repro"
	"repro/serve"
	"repro/serve/cluster"
)

// chaosOptions configures the fault-injection load harness.
type chaosOptions struct {
	dataset     string
	dim         int
	scale       float64
	seed        uint64
	concurrency int
	duration    time.Duration
	httpTarget  string // non-empty: drive an external coordinator instead
	wire        string // wire format: client->coordinator in external mode, coordinator->worker in self-contained mode
}

// chaosBatch is the rows-per-request size the harness sends.
const chaosBatch = 8

// chaosTally accumulates one load run's outcome across client goroutines.
type chaosTally struct {
	mu        sync.Mutex
	latencies []time.Duration
	requests  uint64
	rows      uint64
	dropped   uint64 // requests that errored — the invariant is 0
}

// add records one request's outcome.
func (t *chaosTally) add(lat time.Duration, rows int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.requests++
	t.rows += uint64(rows)
	if err != nil {
		t.dropped++
		return
	}
	t.latencies = append(t.latencies, lat)
}

// percentile returns the p-th latency percentile (latencies must be
// sorted).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runChaos runs the chaos harness: self-contained (spin three real-HTTP
// workers and a coordinator in-process, then kill one worker and stall
// another mid-load) or, with httpTarget set, as a pure load driver against
// an external coordinator while a script injects the faults. Either way it
// reports dropped requests (which must be zero — a non-zero count is the
// returned error) and the latency distribution the faults produced.
func runChaos(o chaosOptions, w io.Writer) error {
	if o.concurrency < 1 {
		o.concurrency = 1
	}
	_, test, err := disthd.SyntheticBenchmark(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	if o.httpTarget != "" {
		return chaosExternal(o, test, w)
	}
	return chaosSelfContained(o, test, w)
}

// stallGate wraps a worker handler so the harness can wedge the whole
// worker mid-load: while stalled, every request blocks until the caller's
// context dies — exactly how a live-locked process looks from outside.
type stallGate struct {
	stalled atomic.Bool
	h       http.Handler
}

// ServeHTTP implements http.Handler.
func (g *stallGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.stalled.Load() {
		// Drain the body first: the server only notices a client hanging
		// up (and cancels r.Context) once the request body is consumed,
		// so blocking with it unread would wedge the connection for good.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return
	}
	g.h.ServeHTTP(w, r)
}

// chaosSelfContained runs the whole cluster in-process over real HTTP:
// three stock serve.Servers as workers, a coordinator fanning out to them,
// concurrent clients streaming batches, one worker SIGKILL-equivalent
// (listener closed) at 1/3 of the run and another stalled at 2/3.
func chaosSelfContained(o chaosOptions, test disthd.DataSplit, w io.Writer) error {
	train, _, err := disthd.SyntheticBenchmark(o.dataset, o.scale, o.seed)
	if err != nil {
		return err
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = o.dim
	cfg.Seed = o.seed
	cfg.RegenRate = 0
	fmt.Fprintf(w, "chaos: training %s model (scale %.2f, D=%d)...\n", o.dataset, o.scale, o.dim)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		return err
	}

	const workers = 3
	var (
		servers []*serve.Server
		gates   []*stallGate
		hss     []*httptest.Server
		addrs   []string
	)
	for i := 0; i < workers; i++ {
		srv, err := serve.New(m, serve.Options{MaxBatch: 32, MaxDelay: time.Millisecond, Replicas: 1})
		if err != nil {
			return err
		}
		g := &stallGate{h: srv.Handler()}
		hs := httptest.NewServer(g)
		servers = append(servers, srv)
		gates = append(gates, g)
		hss = append(hss, hs)
		addrs = append(addrs, hs.URL)
	}
	defer func() {
		for i, hs := range hss {
			gates[i].stalled.Store(false)
			hs.CloseClientConnections()
			hs.Close()
			servers[i].Close()
		}
	}()

	tr := cluster.NewHTTPTransport()
	tr.Wire = o.wire
	c, err := cluster.New(cluster.Config{
		Workers:     addrs,
		Quorum:      2,
		Transport:   tr,
		CallTimeout: 250 * time.Millisecond,
		Retry: cluster.RetryConfig{
			MaxAttempts: 3,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		},
		Breaker:       cluster.BreakerConfig{FailureThreshold: 3, OpenFor: 400 * time.Millisecond},
		ProbeInterval: 100 * time.Millisecond,
		Fallback:      m,
		Seed:          o.seed,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(w, "chaos: %d clients x %v against %d workers over %s wire (kill w0 at 1/3, stall w1 at 2/3)\n",
		o.concurrency, o.duration, workers, o.wire)

	var tally chaosTally
	deadline := time.Now().Add(o.duration)
	killAt := time.Now().Add(o.duration / 3)
	stallAt := time.Now().Add(2 * o.duration / 3)
	var faultOnce [2]sync.Once
	var wg sync.WaitGroup
	for cl := 0; cl < o.concurrency; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				now := time.Now()
				if now.After(killAt) {
					faultOnce[0].Do(func() {
						fmt.Fprintf(w, "chaos: KILLING worker 0 (%s)\n", addrs[0])
						hss[0].CloseClientConnections()
						hss[0].Close()
					})
				}
				if now.After(stallAt) {
					faultOnce[1].Do(func() {
						fmt.Fprintf(w, "chaos: STALLING worker 1 (%s)\n", addrs[1])
						gates[1].stalled.Store(true)
					})
				}
				rows := make([][]float64, chaosBatch)
				for j := range rows {
					rows[j] = test.X[(cl+i*o.concurrency+j)%len(test.X)]
				}
				start := time.Now()
				cls, err := c.PredictBatch(context.Background(), rows)
				if err == nil && len(cls) != len(rows) {
					err = fmt.Errorf("answered %d classes for %d rows", len(cls), len(rows))
				}
				tally.add(time.Since(start), len(rows), err)
			}
		}(cl)
	}
	wg.Wait()

	snap := c.Stats()
	if err := chaosReport(&tally, w); err != nil {
		return err
	}
	fmt.Fprintf(w, "coordinator: fallback_rows=%d quorum_misses=%d retries=%d dropped=%d\n",
		snap.FallbackRows, snap.QuorumMisses, snap.Retries, snap.Dropped)
	for _, ws := range snap.Workers {
		fmt.Fprintf(w, "  worker %-24s breaker=%-9s requests=%-6d failures=%-5d probe_failures=%d\n",
			ws.Addr, ws.Breaker, ws.Requests, ws.Failures, ws.ProbeFailures)
	}
	if snap.Dropped != 0 {
		return fmt.Errorf("coordinator dropped %d rows; the invariant is 0", snap.Dropped)
	}
	return nil
}

// chaosExternal drives a live coordinator over /predict_batch while an
// outside script (scripts/chaos_smoke.sh) injects the faults. It waits for
// the target's /healthz first, so the script needs no readiness dance.
func chaosExternal(o chaosOptions, test disthd.DataSplit, w io.Writer) error {
	base := o.httpTarget
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	if err := waitReady(client, base); err != nil {
		return err
	}
	fmt.Fprintf(w, "chaos: %d clients x %v against %s over %s wire\n", o.concurrency, o.duration, base, o.wire)

	var tally chaosTally
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for cl := 0; cl < o.concurrency; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				rows := make([][]float64, chaosBatch)
				for j := range rows {
					rows[j] = test.X[(cl+i*o.concurrency+j)%len(test.X)]
				}
				start := time.Now()
				classes, err := postBatch(client, base, o.wire, rows)
				if err == nil && len(classes) != len(rows) {
					err = fmt.Errorf("answered %d classes for %d rows", len(classes), len(rows))
				}
				tally.add(time.Since(start), len(rows), err)
			}
		}(cl)
	}
	wg.Wait()
	return chaosReport(&tally, w)
}

// waitReady polls /healthz until the target answers at all (any status:
// a degraded coordinator still serves through its fallback).
func waitReady(client *http.Client, base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("chaos: %s never answered /healthz", base)
}

// chaosReport prints the tally and enforces the zero-dropped invariant.
func chaosReport(t *chaosTally, w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
	fmt.Fprintf(w, "\nchaos result: requests=%d rows=%d dropped=%d\n", t.requests, t.rows, t.dropped)
	fmt.Fprintf(w, "latency: p50=%v p95=%v p99=%v max=%v\n",
		percentile(t.latencies, 0.50), percentile(t.latencies, 0.95),
		percentile(t.latencies, 0.99), percentile(t.latencies, 1.0))
	if t.dropped != 0 {
		return fmt.Errorf("%d requests dropped; the invariant is 0", t.dropped)
	}
	fmt.Fprintln(w, "invariant held: 0 dropped requests")
	return nil
}
