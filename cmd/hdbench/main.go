// Command hdbench regenerates the tables and figures of the DistHD paper's
// evaluation on the synthetic benchmark suite, and doubles as the serving
// load generator.
//
// Usage:
//
//	hdbench -list
//	hdbench -exp fig4                 # one experiment at the default scale
//	hdbench -exp all -scale 0.35      # everything, EXPERIMENTS.md scale
//	hdbench -exp fig8 -quick          # CI-sized smoke run
//	hdbench -loadgen -concurrency 1,8,32,64 -duration 2s
//	hdbench -loadgen -http 127.0.0.1:8080 -wire binary
//	hdbench -driftgen -drift-kinds shift,scale -drift-windows 8
//	hdbench -chaos -duration 6s -concurrency 4
//	hdbench -chaos -http 127.0.0.1:8090 -duration 5s
//
// -loadgen runs the closed-loop serving benchmark: it measures per-request
// Predict against the micro-batching serve.Batcher at each concurrency
// level and reports throughput plus the batching speedup (the PERF.md
// serving table). With -http it instead drives a LIVE disthd-serve or
// disthd-cluster over /predict_batch in the format picked by -wire (json,
// or binary for the repro/serve/wire frame protocol) — run it once per
// format to measure the binary wire's end-to-end win on a deployment.
//
// -wire selects the wire format every live-HTTP driver uses for predict
// and learn calls; the self-contained -chaos run applies it to the
// coordinator->worker hop instead.
//
// -driftgen runs the closed-loop streaming drift benchmark: a labeled
// stream whose distribution drifts (dataset.DriftStream) is served by a
// frozen model, by the ungated adaptive server (every retrain publishes),
// and by the gated adaptive server (challengers must beat the incumbent on
// a stratified holdout), reporting windowed accuracy for all three with
// gate accept/reject counts — the PERF.md streaming table.
// -drift-label-noise flips a fraction of the feedback labels, the
// bad-teacher scenario the gate exists to survive. With -http the adaptive
// side is a LIVE disthd-serve process driven over /predict_batch + /learn,
// with /stats scraped at window boundaries and round-trip latency under
// retrain folded into the table. -quick shrinks it to a CI smoke run.
//
// -chaos runs the fault-injection load harness against the serve/cluster
// coordinator: three real-HTTP workers serve one model, concurrent clients
// stream batches, one worker is killed at a third of the run and another
// stalled at two thirds, and the run FAILS (nonzero exit) unless zero
// requests were dropped; the latency distribution the faults produced
// (p50/p95/p99) is reported. With -http it instead drives a live
// disthd-cluster as a pure load generator while a script — see
// scripts/chaos_smoke.sh — injects the process-level faults.
//
// Experiment output is plain text, one table per experiment, in the same
// layout the paper reports. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run, or 'all'")
		scale = flag.Float64("scale", 0.35, "dataset scale (1.0 ≈ a few thousand samples per dataset)")
		seed  = flag.Uint64("seed", 42, "master random seed")
		quick = flag.Bool("quick", false, "shrink sweeps to CI size")
		list  = flag.Bool("list", false, "list experiment ids and exit")

		loadgen = flag.Bool("loadgen", false, "run the closed-loop serving load generator instead of an experiment")
		lgData  = flag.String("dataset", "UCIHAR", "loadgen: synthetic benchmark to train on")
		lgDim   = flag.Int("dim", 512, "loadgen: hypervector dimensionality")
		lgConc  = flag.String("concurrency", "1,8,32,64", "loadgen: comma-separated concurrency sweep")
		lgDur   = flag.Duration("duration", 2*time.Second, "loadgen: measurement window per cell")
		lgBatch = flag.Int("max-batch", 64, "loadgen: batcher MaxBatch")
		lgDelay = flag.Duration("max-delay", 2*time.Millisecond, "loadgen: batcher MaxDelay")
		lgScale = flag.Float64("loadgen-scale", 0.2, "loadgen: dataset scale")
		quant   = flag.Bool("quantize", false, "loadgen: add a batched 1-bit packed-tier column with its speedup over batched f32; driftgen (in-process): add a frozen-1bit accuracy column")

		chaos = flag.Bool("chaos", false, "run the fault-injection chaos load harness: spin a coordinator + 3 real-HTTP workers in-process, kill one and stall another mid-load, and fail unless 0 requests were dropped (with -http, drive a live disthd-cluster instead while a script injects the faults)")

		driftgen  = flag.Bool("driftgen", false, "run the closed-loop streaming drift benchmark instead of an experiment")
		dgKinds   = flag.String("drift-kinds", "shift,scale,noise", "driftgen: comma-separated drift kinds")
		dgWindows = flag.Int("drift-windows", 8, "driftgen: evaluation windows over the stream")
		dgSev     = flag.Float64("drift-severity", 3.0, "driftgen: drift severity reached at stream end (features are z-scored)")
		dgFrac    = flag.Float64("drift-fraction", 0.33, "driftgen: fraction of features the drift touches")
		dgDataset = flag.String("drift-dataset", "PAMAP2", "driftgen: synthetic benchmark to stream")
		dgDim     = flag.Int("drift-dim", 256, "driftgen: hypervector dimensionality")
		dgScale   = flag.Float64("drift-scale", 0.6, "driftgen: dataset scale")
		dgWindow  = flag.Int("drift-learn-window", 256, "driftgen: learner feedback window")
		dgRecent  = flag.Int("drift-learn-recent", 32, "driftgen: learner windowed-accuracy span")
		dgThresh  = flag.Float64("drift-threshold", 0.10, "driftgen: windowed-accuracy drop that triggers a retrain")
		dgRetrain = flag.Int("drift-retrain-iters", 6, "driftgen: warm-retrain pipeline iterations")
		dgTrain   = flag.Int("drift-train-iters", 12, "driftgen: cold-start training iterations")
		dgNoise   = flag.Float64("drift-label-noise", 0, "driftgen: fraction of feedback labels flipped to a wrong class (bad-teacher scenario the gate must survive)")
		dgHoldout = flag.Float64("drift-holdout", 0, "driftgen: holdout fraction for the gated run (0 = default 0.20)")
		dgMargin  = flag.Float64("drift-gate-margin", -0.07, "driftgen: holdout-accuracy lead a challenger needs to publish; the default tolerates one standard error of the ~51-sample holdout estimate (sqrt(0.25/51)), so sampling noise never vetoes a challenger while garbage — which loses by far more — still rejects")
		dgHTTP    = flag.String("http", "", "loadgen/driftgen/chaos: drive a LIVE server at this address (host:port or URL) instead of the in-process stack — a disthd-serve for -loadgen/-driftgen, a disthd-cluster coordinator for -chaos")
		wireFmt   = flag.String("wire", "json", "loadgen/driftgen/chaos: wire format for live-HTTP predict/learn calls (json or binary); self-contained -chaos uses it coordinator->worker")
		f32       = flag.Bool("f32", false, "loadgen: with -wire binary, send request matrices as TypeMatrixF32 frames — half the bytes, exact for the 1-bit tier (queries are sign-quantized anyway)")
		lgTenants = flag.Int("tenants", 0, "loadgen: multi-tenant mixed workload over a serve/registry — N tenants with heterogeneous D, per-tenant p50/p99 and eviction churn (with -http, installs t0..tN-1 on a live -registry server)")
		lgPool    = flag.Int("pool", 0, "loadgen -tenants (in-process): registry replica-pool capacity; set below -tenants to force LRU eviction churn (0 = no eviction)")
	)
	flag.Parse()
	if err := checkWire(*wireFmt); err != nil {
		fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
		os.Exit(2)
	}

	if *chaos {
		conc, err := parseConcurrency(*lgConc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
			os.Exit(2)
		}
		o := chaosOptions{
			dataset:     *lgData,
			dim:         *lgDim,
			scale:       *lgScale,
			seed:        *seed,
			concurrency: conc[0],
			duration:    *lgDur,
			httpTarget:  *dgHTTP,
			wire:        *wireFmt,
		}
		if err := runChaos(o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *driftgen {
		kinds, err := parseDriftKinds(*dgKinds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
			os.Exit(2)
		}
		o := driftgenOptions{
			dataset:      *dgDataset,
			dim:          *dgDim,
			scale:        *dgScale,
			seed:         *seed,
			kinds:        kinds,
			windows:      *dgWindows,
			severity:     *dgSev,
			fraction:     *dgFrac,
			labelNoise:   *dgNoise,
			learnWindow:  *dgWindow,
			recentWindow: *dgRecent,
			driftThresh:  *dgThresh,
			holdout:      *dgHoldout,
			gateMargin:   *dgMargin,
			retrainIters: *dgRetrain,
			trainIters:   *dgTrain,
			httpTarget:   *dgHTTP,
			wire:         *wireFmt,
			quantize:     *quant,
			quick:        *quick,
		}
		if err := runDriftgen(o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: driftgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *loadgen {
		conc, err := parseConcurrency(*lgConc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %v\n", err)
			os.Exit(2)
		}
		lgWire := *wireFmt
		if *f32 {
			if lgWire != wireBinary {
				fmt.Fprintln(os.Stderr, "hdbench: -f32 needs -wire binary (f32 frames ride the binary wire)")
				os.Exit(2)
			}
			lgWire = wireBinaryF32
		}
		o := loadgenOptions{
			dataset:     *lgData,
			dim:         *lgDim,
			scale:       *lgScale,
			seed:        *seed,
			concurrency: conc,
			duration:    *lgDur,
			maxBatch:    *lgBatch,
			maxDelay:    *lgDelay,
			quantize:    *quant,
			httpTarget:  *dgHTTP,
			wire:        lgWire,
			tenants:     *lgTenants,
			pool:        *lgPool,
		}
		if o.tenants > 0 {
			if err := runLoadgenTenants(o, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "hdbench: loadgen: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runLoadgen(o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -exp is required (or -list); e.g. hdbench -exp fig4")
		os.Exit(2)
	}

	o := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.ExperimentIDs()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
			fmt.Println("========================================")
			fmt.Println()
		}
		start := time.Now()
		if err := experiments.Run(id, o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
