// Command hdbench regenerates the tables and figures of the DistHD paper's
// evaluation on the synthetic benchmark suite.
//
// Usage:
//
//	hdbench -list
//	hdbench -exp fig4                 # one experiment at the default scale
//	hdbench -exp all -scale 0.35      # everything, EXPERIMENTS.md scale
//	hdbench -exp fig8 -quick          # CI-sized smoke run
//
// Output is plain text, one table per experiment, in the same layout the
// paper reports. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run, or 'all'")
		scale = flag.Float64("scale", 0.35, "dataset scale (1.0 ≈ a few thousand samples per dataset)")
		seed  = flag.Uint64("seed", 42, "master random seed")
		quick = flag.Bool("quick", false, "shrink sweeps to CI size")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.ExperimentIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "hdbench: -exp is required (or -list); e.g. hdbench -exp fig4")
		os.Exit(2)
	}

	o := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.ExperimentIDs()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
			fmt.Println("========================================")
			fmt.Println()
		}
		start := time.Now()
		if err := experiments.Run(id, o, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
