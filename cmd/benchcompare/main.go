// Command benchcompare gates CI on benchmark regressions: it parses two
// `go test -bench` outputs — a committed baseline and the current run —
// aggregates the repeated measurements of each benchmark (-count N), and
// fails (exit 1) when any benchmark regressed.
//
// Usage:
//
//	go test ./internal/bitpack -bench . -count 5 | tee current.txt
//	benchcompare -baseline bench/baseline.txt [-threshold 1.10] [-json out.json] current.txt
//
// A benchmark counts as regressed only when BOTH hold:
//
//   - its current mean ns/op exceeds the baseline mean by more than
//     -threshold (default 1.10 = +10%), and
//   - the current MINIMUM exceeds the baseline MAXIMUM — the two samples'
//     ranges do not even overlap, so scheduler noise cannot explain it.
//
// The interval-overlap clause is what makes the gate usable on a noisy
// single-core CI host: a genuine kernel regression (say a dropped SIMD
// path) shifts the whole distribution, while a noisy run merely stretches
// it. Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks must be able to land, and removed ones to leave).
//
// -json writes the aggregated current measurements (mean/min/max ns/op,
// allocs/op, sample count) as a JSON report — the committed BENCH_*.json
// provenance files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkScoreBatch/d=2048/avx512-1   37482   3208 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s(\d+) allocs/op)?`)

// sample aggregates one benchmark's repeated measurements.
type sample struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	MeanNs float64 `json:"mean_ns_op"`
	MinNs  float64 `json:"min_ns_op"`
	MaxNs  float64 `json:"max_ns_op"`
	Allocs int64   `json:"allocs_op"`
	sum    float64
}

// parseFile reads a -bench output and aggregates per benchmark name.
func parseFile(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &sample{Name: m[1], MinNs: ns, MaxNs: ns}
			out[m[1]] = s
		}
		s.N++
		s.sum += ns
		if ns < s.MinNs {
			s.MinNs = ns
		}
		if ns > s.MaxNs {
			s.MaxNs = ns
		}
		if m[4] != "" {
			if a, err := strconv.ParseInt(m[4], 10, 64); err == nil {
				s.Allocs = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, s := range out {
		s.MeanNs = s.sum / float64(s.N)
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline -bench output to compare against")
	threshold := flag.Float64("threshold", 1.10, "mean-ns/op ratio above which a benchmark may regress")
	jsonOut := flag.String("json", "", "write the aggregated current measurements to this JSON file")
	flag.Parse()
	if *baseline == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare -baseline <file> [-threshold 1.10] [-json out.json] <current-bench-output>")
		os.Exit(2)
	}
	base, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: current: %v\n", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: current run contains no benchmark lines")
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("%-56s %12.0f ns/op   (new, no baseline)\n", name, c.MeanNs)
			continue
		}
		ratio := c.MeanNs / b.MeanNs
		verdict := "ok"
		if ratio > *threshold && c.MinNs > b.MaxNs {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-56s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.MeanNs, c.MeanNs, 100*(ratio-1), verdict)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-56s (removed from current run)\n", name)
		}
	}

	if *jsonOut != "" {
		report := make([]*sample, 0, len(names))
		for _, name := range names {
			report = append(report, cur[name])
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: json: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: json: %v\n", err)
			os.Exit(2)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d benchmark(s) regressed past %.0f%% with non-overlapping ranges\n",
			regressed, 100*(*threshold-1))
		os.Exit(1)
	}
}
