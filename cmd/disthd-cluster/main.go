// Command disthd-cluster runs the fault-tolerant coordinator in front of
// a fleet of disthd-serve worker shards.
//
// Usage:
//
//	disthd-cluster -addr :8090 -workers 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 \
//	    -demo PAMAP2 -dim 128
//
// The coordinator speaks the same HTTP wire formats as a single
// disthd-serve, so clients cannot tell the difference: POST /predict,
// POST /predict_batch (JSON by default, the compact binary frame protocol
// when the request's Content-Type is application/x-disthd-frame), GET
// /healthz, GET /stats, plus POST /merge to force one federated merge
// round. -worker-wire binary makes the coordinator itself speak the frame
// protocol to its workers. Batches fan out across the worker shards
// behind per-worker circuit breakers with retries, jittered backoff, and
// optional hedging; when fewer than -quorum workers are available the
// batch is served by the locally held fallback model instead of failing.
//
// The fallback is seeded from -model (a Model.Save snapshot) or trained
// with -demo, and refreshed by the federated merge loop (-merge-interval):
// shard models are pulled over GET /model, averaged under the
// disthd.AverageModels contract, gated against the incumbent on a holdout
// drawn from the -demo test split (-merge-holdout), and — with -republish
// — pushed back to the shards via POST /swap.
//
// SIGTERM/SIGINT drains in-flight requests, stops the probe and merge
// loops, and prints a final "bye:" stats line. See `hdbench -chaos` for
// the kill/stall load harness that drives this binary in CI.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	disthd "repro"
	"repro/serve/cluster"
)

func main() {
	var (
		addr    = flag.String("addr", ":8090", "listen address")
		workers = flag.String("workers", "", "comma-separated worker shard addresses (host:port or URLs)")
		quorum  = flag.Int("quorum", 0, "minimum available workers for remote serving (0 = majority)")

		model   = flag.String("model", "", "path to a Model.Save snapshot to hold as the local fallback")
		demo    = flag.String("demo", "", "train the fallback on this synthetic benchmark (e.g. PAMAP2) instead of loading one")
		dim     = flag.Int("dim", 512, "hypervector dimensionality for -demo")
		scale   = flag.Float64("scale", 0.2, "dataset scale for -demo")
		seed    = flag.Uint64("seed", 42, "random seed for -demo, backoff jitter, and the merge holdout")
		holdout = flag.Int("merge-holdout", 256, "rows of the -demo test split held out for the merge gate (0 = gate publishes every merge)")

		callTimeout = flag.Duration("call-timeout", time.Second, "per-worker call deadline")
		maxAttempts = flag.Int("max-attempts", 3, "tries per chunk, first call included")
		baseBackoff = flag.Duration("base-backoff", 5*time.Millisecond, "backoff before the first retry (doubles per retry, jittered)")
		maxBackoff  = flag.Duration("max-backoff", 100*time.Millisecond, "backoff growth cap")
		hedgeAfter  = flag.Duration("hedge-after", 0, "duplicate an unanswered call on a second worker after this long (0 = off)")

		brThreshold = flag.Int("breaker-threshold", 5, "consecutive failures that open a worker's circuit breaker")
		brOpenFor   = flag.Duration("breaker-open-for", 2*time.Second, "cooldown before an open breaker admits half-open trials")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "active /healthz probe cadence (0 = passive only)")

		workerWire = flag.String("worker-wire", cluster.WireJSON, "wire format for coordinator->worker predict calls: json, or binary for the compact frame protocol")
		mergeEvery = flag.Duration("merge-interval", 0, "federated merge-loop cadence (0 = only on POST /merge)")
		gateMargin = flag.Float64("gate-margin", 0, "holdout-accuracy lead a merged candidate needs over the incumbent fallback")
		republish  = flag.Bool("republish", false, "push a published merged model back to every worker via /swap")
		strictHlz  = flag.Bool("strict-health", false, "answer /healthz with 503 while below quorum instead of 200 + degraded")
	)
	flag.Parse()

	addrs := splitWorkers(*workers)
	if len(addrs) == 0 {
		log.Fatal("disthd-cluster: -workers is required, e.g. -workers 127.0.0.1:8081,127.0.0.1:8082")
	}
	if *workerWire != cluster.WireJSON && *workerWire != cluster.WireBinary {
		log.Fatalf("disthd-cluster: bad -worker-wire %q: want %s or %s", *workerWire, cluster.WireJSON, cluster.WireBinary)
	}
	tr := cluster.NewHTTPTransport()
	tr.Wire = *workerWire

	fallback, holdX, holdY, err := loadFallback(*model, *demo, *dim, *scale, *seed, *holdout)
	if err != nil {
		log.Fatalf("disthd-cluster: %v", err)
	}
	if fallback == nil {
		log.Printf("WARNING: no fallback model (-model or -demo); below-quorum batches will FAIL and count as dropped")
	} else {
		log.Printf("fallback model: %d features, D=%d, %d classes (merge holdout: %d rows)",
			fallback.Features(), fallback.Dim(), fallback.Classes(), len(holdX))
	}

	c, err := cluster.New(cluster.Config{
		Workers:     addrs,
		Quorum:      *quorum,
		Transport:   tr,
		CallTimeout: *callTimeout,
		Retry: cluster.RetryConfig{
			MaxAttempts: *maxAttempts,
			BaseBackoff: *baseBackoff,
			MaxBackoff:  *maxBackoff,
			HedgeAfter:  *hedgeAfter,
		},
		Breaker: cluster.BreakerConfig{
			FailureThreshold: *brThreshold,
			OpenFor:          *brOpenFor,
		},
		ProbeInterval: *probeEvery,
		Fallback:      fallback,
		Merge: cluster.MergeConfig{
			Interval:   *mergeEvery,
			HoldX:      holdX,
			HoldY:      holdY,
			GateMargin: *gateMargin,
			Republish:  *republish,
		},
		Seed: *seed,
	})
	if err != nil {
		log.Fatalf("disthd-cluster: %v", err)
	}

	srv := cluster.NewServer(c)
	srv.SetStrictHealth(*strictHlz)

	// SIGTERM/SIGINT drain: Server.Close finishes in-flight HTTP requests
	// before stopping the coordinator's probe and merge loops, so no
	// accepted request is dropped by the shutdown itself.
	drained := make(chan struct{})
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(drained)
		<-stop
		log.Printf("draining...")
		if err := srv.Close(); err != nil {
			log.Printf("disthd-cluster: shutdown: %v", err)
		}
	}()

	log.Printf("coordinating %d workers on %s (wire=%s quorum=%d call-timeout=%v attempts=%d hedge=%v probe=%v merge=%v)",
		len(addrs), *addr, *workerWire, c.Stats().Quorum, *callTimeout, *maxAttempts, *hedgeAfter, *probeEvery, *mergeEvery)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("disthd-cluster: %v", err)
	}
	<-drained
	log.Printf("bye: %+v", srv.Stats())
}

// splitWorkers parses the comma-separated worker list.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

// loadFallback builds the local fallback model (from a snapshot or a demo
// training run) plus the labeled holdout the merge gate judges candidates
// on. All returns may be nil/empty: the coordinator then serves without a
// safety net and the gate publishes unconditionally.
func loadFallback(path, demo string, dim int, scale float64, seed uint64, holdout int) (*disthd.Model, [][]float64, []int, error) {
	switch {
	case path != "" && demo != "":
		return nil, nil, nil, fmt.Errorf("-model and -demo are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		defer f.Close()
		m, err := disthd.Load(f)
		return m, nil, nil, err
	case demo != "":
		train, test, err := disthd.SyntheticBenchmark(demo, scale, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg := disthd.DefaultConfig()
		cfg.Dim = dim
		cfg.Seed = seed
		cfg.RegenRate = 0 // the fallback must stay mergeable with the shards
		log.Printf("training fallback model on %s (scale %.2f, D=%d)...", demo, scale, dim)
		m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		if holdout > len(test.X) {
			holdout = len(test.X)
		}
		return m, test.X[:holdout], test.Y[:holdout], nil
	default:
		return nil, nil, nil, nil
	}
}
