package disthd

import (
	"sync"
	"testing"
)

// fuzzModel trains one small shared model for the feedback-window fuzzer —
// per-case training would dominate the fuzz loop.
var fuzzModel = struct {
	once sync.Once
	m    *Model
}{}

func fuzzFixture(f *testing.F) *Model {
	f.Helper()
	fuzzModel.once.Do(func() {
		train, _, err := SyntheticBenchmark("UCIHAR", 0.08, 21)
		if err != nil {
			panic(err)
		}
		cfg := DefaultConfig()
		cfg.Dim = 64
		cfg.Iterations = 3
		cfg.Seed = 21
		m, err := TrainWithConfig(train.X, train.Y, train.Classes, cfg)
		if err != nil {
			panic(err)
		}
		fuzzModel.m = m
	})
	return fuzzModel.m
}

// FuzzFeedbackWindow drives the OnlineLearner's feedback window (sliding
// and reservoir) with an arbitrary labeled stream and checks the
// structural invariants every retrain depends on: the window never exceeds
// its capacity, the holdout and training slices are disjoint and cover the
// window exactly, per-class counts agree between the window snapshot and
// the split, and (sliding mode) the window holds exactly the newest
// insertions.
func FuzzFeedbackWindow(f *testing.F) {
	m := fuzzFixture(f)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 7, 8, 9}, uint8(4), false, uint8(20))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(3), true, uint8(0))
	f.Add([]byte{9, 200, 3, 77, 0, 0, 255, 255, 13, 13, 40, 41}, uint8(7), true, uint8(55))
	f.Add([]byte{42}, uint8(1), false, uint8(99))
	f.Fuzz(func(t *testing.T, data []byte, window uint8, reservoir bool, holdoutPct uint8) {
		w := int(window)%32 + 1
		// 0..0.59; 0 selects the default 0.20 (the config's documented
		// sentinel), which is itself worth fuzzing through.
		hf := float64(holdoutPct%60) / 100
		l, err := NewOnlineLearner(m, OnlineConfig{
			Window:          w,
			Reservoir:       reservoir,
			RecentWindow:    8,
			HoldoutFraction: hf,
			Seed:            uint64(w)*131 + 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		k := m.Classes()
		q := m.Features()
		inserted := make([]int, k)
		var streamLabels []int
		ops := len(data) / 2
		if ops > 300 {
			ops = 300
		}
		for i := 0; i < ops; i++ {
			label := int(data[2*i]) % k
			x := make([]float64, q)
			x[0] = float64(i) // unique id: disjointness is checked by value
			x[1] = float64(data[2*i+1]) / 255
			for j := 2; j < q; j++ {
				x[j] = float64((i+j)%5) * 0.2
			}
			if _, err := l.Observe(x, label); err != nil {
				t.Fatal(err)
			}
			inserted[label]++
			streamLabels = append(streamLabels, label)
		}

		// Bounded size.
		want := len(streamLabels)
		if want > w {
			want = w
		}
		if l.WindowLen() != want {
			t.Fatalf("window holds %d after %d insertions, capacity %d", l.WindowLen(), len(streamLabels), w)
		}
		X, y := l.Window()
		if len(X) != want || len(y) != want {
			t.Fatalf("snapshot sized %d/%d, want %d", len(X), len(y), want)
		}

		// Per-class counts: never more of a class than was inserted, and in
		// sliding mode exactly the counts of the newest `want` insertions.
		winCount := make([]int, k)
		for _, c := range y {
			winCount[c]++
		}
		tail := streamLabels[len(streamLabels)-want:]
		tailCount := make([]int, k)
		for _, c := range tail {
			tailCount[c]++
		}
		for c := 0; c < k; c++ {
			if winCount[c] > inserted[c] {
				t.Fatalf("class %d: window holds %d, only %d inserted", c, winCount[c], inserted[c])
			}
			if !reservoir && winCount[c] != tailCount[c] {
				t.Fatalf("sliding window class %d count %d, newest-%d stream has %d", c, winCount[c], want, tailCount[c])
			}
		}

		// Split: disjoint, covering, label-preserving, count-consistent.
		trainX, trainY, holdX, holdY := l.SplitWindow()
		if len(trainX) != len(trainY) || len(holdX) != len(holdY) {
			t.Fatalf("ragged split %d/%d %d/%d", len(trainX), len(trainY), len(holdX), len(holdY))
		}
		if len(trainX)+len(holdX) != want {
			t.Fatalf("split covers %d+%d, window holds %d", len(trainX), len(holdX), want)
		}
		splitCount := make([]int, k)
		seen := make(map[float64]bool, want)
		consume := func(X [][]float64, y []int) {
			for i, row := range X {
				if seen[row[0]] {
					t.Fatalf("sample id %v appears twice across the split", row[0])
				}
				seen[row[0]] = true
				splitCount[y[i]]++
			}
		}
		consume(trainX, trainY)
		consume(holdX, holdY)
		for c := 0; c < k; c++ {
			if splitCount[c] != winCount[c] {
				t.Fatalf("class %d: split has %d, window %d", c, splitCount[c], winCount[c])
			}
		}
		// A class with a single window sample never loses it to the holdout.
		holdCount := make([]int, k)
		for _, c := range holdY {
			holdCount[c]++
		}
		for c := 0; c < k; c++ {
			if winCount[c] == 1 && holdCount[c] != 0 {
				t.Fatalf("class %d: lone sample held out", c)
			}
		}
	})
}
