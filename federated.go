package disthd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// MergeModels aggregates DistHD models trained on disjoint data shards
// into one global model by summing their class hypervectors — the
// HDC-native federated aggregation the paper's ref [5] builds on
// (bundling is the memory operation, so bundled class vectors memorize
// the union of what each shard learned).
//
// # Merge contract
//
// Every input model must be non-nil and agree on all four of:
//
//   - feature width: the models were trained on the same input schema;
//   - hypervector dimensionality D: the class hypervectors are summed
//     coordinate-wise, so they must live in the same space;
//   - class count: every shard must have been trained with the same
//     global label set, even if some labels never occur in its shard —
//     pass the global class count to TrainWithConfig, never the shard's
//     own. Two shards that saw 5 and 6 labels of a 6-class problem do
//     NOT merge; retrain the first with classes = 6;
//   - encoder: same family, same Seed, and RegenRate = 0, because
//     dimension regeneration is data-driven and would diverge the
//     encoders. Encoder equality is verified by probing both encoders
//     with a fixed input and comparing outputs bit for bit.
//
// Any violation returns a descriptive error naming the offending model's
// position in the argument list; nothing is ever merged silently across a
// disagreement. The merged model reuses the shared encoder and carries no
// training statistics (only Info.EffectiveDim is set).
func MergeModels(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("disthd: nothing to merge")
	}
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("disthd: model %d is nil", i)
		}
	}
	first := models[0]
	for i, m := range models[1:] {
		switch {
		case m.Features() != first.Features():
			return nil, fmt.Errorf("disthd: cannot merge: model %d has %d features, model 0 has %d "+
				"(shards must share one input schema)", i+1, m.Features(), first.Features())
		case m.Dim() != first.Dim():
			return nil, fmt.Errorf("disthd: cannot merge: model %d has dim %d, model 0 has %d "+
				"(class hypervectors are summed coordinate-wise)", i+1, m.Dim(), first.Dim())
		case m.Classes() != first.Classes():
			return nil, fmt.Errorf("disthd: cannot merge: model %d separates %d classes, model 0 separates %d "+
				"(train every shard with the global class count, even if some labels are absent from its shard)",
				i+1, m.Classes(), first.Classes())
		case m.kind != first.kind:
			return nil, fmt.Errorf("disthd: cannot merge: model %d uses a different encoder family", i+1)
		}
		if !sameEncoder(first, m) {
			return nil, fmt.Errorf("disthd: cannot merge: model %d was trained with a different encoder "+
				"(merging requires a shared seed and RegenRate = 0)", i+1)
		}
	}

	merged := model.New(first.Classes(), first.Dim())
	for _, m := range models {
		for i, v := range m.clf.Model.Weights.Data {
			merged.Weights.Data[i] += v
		}
	}
	merged.RefreshNorms()

	cfg := first.clf.Cfg
	return &Model{
		clf:  &core.Classifier{Enc: first.clf.Enc, Model: merged, Cfg: cfg},
		kind: first.kind,
		Info: TrainInfo{EffectiveDim: first.Dim()},
	}, nil
}

// sameEncoder probes both encoders with a deterministic input and compares
// outputs bit-for-bit. Any regeneration or seed difference shows up with
// overwhelming probability.
func sameEncoder(a, b *Model) bool {
	q := a.Features()
	probe := make([]float64, q)
	for i := range probe {
		// a fixed, feature-dependent probe touching every input
		probe[i] = math.Sin(float64(i+1) * 0.7304631)
	}
	ha := make([]float64, a.Dim())
	hb := make([]float64, b.Dim())
	a.clf.Enc.Encode(probe, ha)
	b.clf.Enc.Encode(probe, hb)
	for i := range ha {
		if ha[i] != hb[i] {
			return false
		}
	}
	return true
}
