package disthd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// MergeModels aggregates DistHD models trained on disjoint data shards
// into one global model by summing their class hypervectors — the
// HDC-native federated aggregation the paper's ref [5] builds on
// (bundling is the memory operation, so bundled class vectors memorize
// the union of what each shard learned).
//
// # Merge contract
//
// Every input model must be non-nil and agree on all four of:
//
//   - feature width: the models were trained on the same input schema;
//   - hypervector dimensionality D: the class hypervectors are summed
//     coordinate-wise, so they must live in the same space;
//   - class count: every shard must have been trained with the same
//     global label set, even if some labels never occur in its shard —
//     pass the global class count to TrainWithConfig, never the shard's
//     own. Two shards that saw 5 and 6 labels of a 6-class problem do
//     NOT merge; retrain the first with classes = 6;
//   - encoder: same family, same Seed, and RegenRate = 0, because
//     dimension regeneration is data-driven and would diverge the
//     encoders. Encoder equality is verified by probing both encoders
//     with a fixed input and comparing outputs bit for bit.
//
// Any violation returns a descriptive error naming the offending model's
// position in the argument list; nothing is ever merged silently across a
// disagreement. The merged model reuses the shared encoder and carries no
// training statistics (only Info.EffectiveDim is set).
func MergeModels(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("disthd: nothing to merge")
	}
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("disthd: model %d is nil", i)
		}
	}
	first := models[0]
	for i, m := range models[1:] {
		if err := mergeCompat(first, m); err != nil {
			return nil, fmt.Errorf("disthd: cannot merge: model %d %v", i+1, err)
		}
	}

	merged := model.New(first.Classes(), first.Dim())
	for _, m := range models {
		for i, v := range m.clf.Model.Weights.Data {
			merged.Weights.Data[i] += v
		}
	}
	merged.RefreshNorms()

	cfg := first.clf.Cfg
	return &Model{
		clf:  &core.Classifier{Enc: first.clf.Enc, Model: merged, Cfg: cfg},
		kind: first.kind,
		Info: TrainInfo{EffectiveDim: first.Dim()},
	}, nil
}

// mergeCompat checks one model against the merge contract's reference
// model, returning a descriptive violation (phrased relative to the
// reference, "model 0" in MergeModels terms) or nil.
func mergeCompat(ref, m *Model) error {
	switch {
	case m.Features() != ref.Features():
		return fmt.Errorf("has %d features, model 0 has %d "+
			"(shards must share one input schema)", m.Features(), ref.Features())
	case m.Dim() != ref.Dim():
		return fmt.Errorf("has dim %d, model 0 has %d "+
			"(class hypervectors are summed coordinate-wise)", m.Dim(), ref.Dim())
	case m.Classes() != ref.Classes():
		return fmt.Errorf("separates %d classes, model 0 separates %d "+
			"(train every shard with the global class count, even if some labels are absent from its shard)",
			m.Classes(), ref.Classes())
	case m.kind != ref.kind:
		return fmt.Errorf("uses a different encoder family")
	}
	if !sameEncoder(ref, m) {
		return fmt.Errorf("was trained with a different encoder " +
			"(merging requires a shared seed and RegenRate = 0)")
	}
	return nil
}

// MergeableWith reports whether o satisfies the MergeModels contract
// against m (shape, class count, and bitwise-identical encoder), with a
// descriptive error naming the violation. The federated merge loop uses
// it to pre-check a freshly fetched shard model and skip an incompatible
// shard instead of failing the whole merge round.
func (m *Model) MergeableWith(o *Model) error {
	if m == nil || o == nil {
		return fmt.Errorf("disthd: cannot merge a nil model")
	}
	if err := mergeCompat(m, o); err != nil {
		return fmt.Errorf("disthd: not mergeable: model %v", err)
	}
	return nil
}

// AverageModels merges like MergeModels and then rescales the bundled
// class hypervectors by 1/len(models). Cosine scoring makes the two
// merges predict identically on any input; the difference is numeric
// headroom — a merge LOOP (the serve/cluster coordinator re-merges and
// republishes on an interval, so each round's output feeds the next
// round's inputs) would grow MergeModels weights by a factor of N per
// round without bound, while the averaged form stays at the scale of one
// shard's weights forever.
func AverageModels(models ...*Model) (*Model, error) {
	merged, err := MergeModels(models...)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(len(models))
	for i := range merged.clf.Model.Weights.Data {
		merged.clf.Model.Weights.Data[i] *= inv
	}
	merged.clf.Model.RefreshNorms()
	return merged, nil
}

// sameEncoder probes both encoders with a deterministic input and compares
// outputs bit-for-bit. Any regeneration or seed difference shows up with
// overwhelming probability.
func sameEncoder(a, b *Model) bool {
	q := a.Features()
	probe := make([]float64, q)
	for i := range probe {
		// a fixed, feature-dependent probe touching every input
		probe[i] = math.Sin(float64(i+1) * 0.7304631)
	}
	ha := make([]float64, a.Dim())
	hb := make([]float64, b.Dim())
	a.clf.Enc.Encode(probe, ha)
	b.clf.Enc.Encode(probe, hb)
	for i := range ha {
		if ha[i] != hb[i] {
			return false
		}
	}
	return true
}
