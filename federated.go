package disthd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// MergeModels aggregates DistHD models trained on disjoint data shards
// into one global model by summing their class hypervectors — the
// HDC-native federated aggregation the paper's ref [5] builds on
// (bundling is the memory operation, so bundled class vectors memorize
// the union of what each shard learned).
//
// Merging is only meaningful when every party used the *same frozen
// encoder*: train each shard with an identical Config (same Seed, same
// Dim) and RegenRate = 0, because dimension regeneration is data-driven
// and would diverge the encoders. MergeModels verifies encoder equality
// by comparing probe encodings and fails loudly on mismatch.
func MergeModels(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("disthd: nothing to merge")
	}
	first := models[0]
	for i, m := range models[1:] {
		switch {
		case m.Features() != first.Features():
			return nil, fmt.Errorf("disthd: model %d has %d features, model 0 has %d", i+1, m.Features(), first.Features())
		case m.Dim() != first.Dim():
			return nil, fmt.Errorf("disthd: model %d has dim %d, model 0 has %d", i+1, m.Dim(), first.Dim())
		case m.Classes() != first.Classes():
			return nil, fmt.Errorf("disthd: model %d has %d classes, model 0 has %d", i+1, m.Classes(), first.Classes())
		case m.kind != first.kind:
			return nil, fmt.Errorf("disthd: model %d uses a different encoder family", i+1)
		}
		if !sameEncoder(first, m) {
			return nil, fmt.Errorf("disthd: model %d was trained with a different encoder "+
				"(merging requires a shared seed and RegenRate = 0)", i+1)
		}
	}

	merged := model.New(first.Classes(), first.Dim())
	for _, m := range models {
		for i, v := range m.clf.Model.Weights.Data {
			merged.Weights.Data[i] += v
		}
	}
	merged.RefreshNorms()

	cfg := first.clf.Cfg
	return &Model{
		clf:  &core.Classifier{Enc: first.clf.Enc, Model: merged, Cfg: cfg},
		kind: first.kind,
		Info: TrainInfo{EffectiveDim: first.Dim()},
	}, nil
}

// sameEncoder probes both encoders with a deterministic input and compares
// outputs bit-for-bit. Any regeneration or seed difference shows up with
// overwhelming probability.
func sameEncoder(a, b *Model) bool {
	q := a.Features()
	probe := make([]float64, q)
	for i := range probe {
		// a fixed, feature-dependent probe touching every input
		probe[i] = math.Sin(float64(i+1) * 0.7304631)
	}
	ha := make([]float64, a.Dim())
	hb := make([]float64, b.Dim())
	a.clf.Enc.Encode(probe, ha)
	b.clf.Enc.Encode(probe, hb)
	for i := range ha {
		if ha[i] != hb[i] {
			return false
		}
	}
	return true
}
