package disthd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// Binary model format: a fixed magic, a version byte, the shape header,
// then the encoder parameters and class hypervectors as little-endian
// float64s. Only RBF-encoded models are serializable (the linear encoder
// is provided for ablations, not deployment).
const (
	modelMagic   = 0x44485644 // "DVHD"
	modelVersion = 1
)

// Save writes the trained model to w in a self-contained binary format
// readable by Load.
func (m *Model) Save(w io.Writer) error {
	if m.kind != EncoderRBF {
		return fmt.Errorf("disthd: only RBF-encoded models can be serialized")
	}
	rbf, ok := m.clf.Enc.(*encoding.RBF)
	if !ok {
		return fmt.Errorf("disthd: model encoder is not RBF")
	}
	bw := bufio.NewWriter(w)
	base, phase, sigma := rbf.Params()

	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	for _, v := range []uint32{modelMagic, modelVersion,
		uint32(m.Features()), uint32(m.Dim()), uint32(m.Classes())} {
		if err := writeU32(v); err != nil {
			return fmt.Errorf("disthd: save header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sigma); err != nil {
		return fmt.Errorf("disthd: save sigma: %w", err)
	}
	for _, block := range [][]float64{base.Data, phase, m.clf.Model.Weights.Data} {
		if err := writeFloats(bw, block); err != nil {
			return fmt.Errorf("disthd: save payload: %w", err)
		}
	}
	return bw.Flush()
}

// writeFloats emits the slice as little-endian float64 bits.
func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readFloats fills the slice from little-endian float64 bits.
func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8)
	for i := range xs {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return nil
}

// Load reads a model previously written by Save. The returned model is
// ready for inference and further deployment; its training statistics are
// not preserved.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("disthd: load header: %w", err)
		}
	}
	if hdr[0] != modelMagic {
		return nil, fmt.Errorf("disthd: bad magic 0x%x (not a DistHD model)", hdr[0])
	}
	if hdr[1] != modelVersion {
		return nil, fmt.Errorf("disthd: unsupported model version %d", hdr[1])
	}
	features, dim, classes := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if features <= 0 || dim <= 0 || classes < 2 {
		return nil, fmt.Errorf("disthd: corrupt model shape %dx%dx%d", features, dim, classes)
	}
	var sigma float64
	if err := binary.Read(br, binary.LittleEndian, &sigma); err != nil {
		return nil, fmt.Errorf("disthd: load sigma: %w", err)
	}

	base := mat.New(dim, features)
	phase := make([]float64, dim)
	weights := make([]float64, classes*dim)
	for _, block := range [][]float64{base.Data, phase, weights} {
		if err := readFloats(br, block); err != nil {
			return nil, fmt.Errorf("disthd: load payload: %w", err)
		}
	}

	enc, err := encoding.NewRBFFromParams(base, phase, sigma, 1)
	if err != nil {
		return nil, err
	}
	mdl := model.New(classes, dim)
	copy(mdl.Weights.Data, weights)
	mdl.RefreshNorms()

	cfg := core.DefaultConfig()
	cfg.Dim = dim
	return &Model{
		clf:  &core.Classifier{Enc: enc, Model: mdl, Cfg: cfg},
		kind: EncoderRBF,
	}, nil
}
