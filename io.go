package disthd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/mat"
	"repro/internal/model"
)

// Binary model format: a fixed magic, a version word, the shape header,
// then the encoder parameters and class hypervectors. Version 1 is the
// f32 format (class weights as little-endian float64s); version 2 is the
// packed 1-bit format (class sign bits as little-endian uint64 words,
// ceil(D/64) per class — the payload an edge deployment actually ships).
// Save picks the version from the model: a quantized model always
// serializes packed. Only RBF-encoded models are serializable (the
// linear encoder is provided for ablations, not deployment).
const (
	modelMagic       = 0x44485644 // "DVHD"
	modelVersion     = 1
	modelVersion1Bit = 2
)

// Save writes the trained model to w in a self-contained binary format
// readable by Load. Quantized models serialize as the packed 1-bit
// format (version 2), f32 models as version 1.
func (m *Model) Save(w io.Writer) error {
	if m.kind != EncoderRBF {
		return fmt.Errorf("disthd: only RBF-encoded models can be serialized")
	}
	rbf, ok := m.clf.Enc.(*encoding.RBF)
	if !ok {
		return fmt.Errorf("disthd: model encoder is not RBF")
	}
	bw := bufio.NewWriter(w)
	base, phase, sigma := rbf.Params()

	version := uint32(modelVersion)
	if m.Quantized() {
		version = modelVersion1Bit
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	for _, v := range []uint32{modelMagic, version,
		uint32(m.Features()), uint32(m.Dim()), uint32(m.Classes())} {
		if err := writeU32(v); err != nil {
			return fmt.Errorf("disthd: save header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, sigma); err != nil {
		return fmt.Errorf("disthd: save sigma: %w", err)
	}
	for _, block := range [][]float64{base.Data, phase} {
		if err := writeFloats(bw, block); err != nil {
			return fmt.Errorf("disthd: save payload: %w", err)
		}
	}
	if m.Quantized() {
		words := (m.Dim() + 63) / 64
		buf := make([]byte, 8)
		for c := 0; c < m.Classes(); c++ {
			row := m.packed.Row(c)
			for j := 0; j < words; j++ {
				binary.LittleEndian.PutUint64(buf, row[j])
				if _, err := bw.Write(buf); err != nil {
					return fmt.Errorf("disthd: save packed classes: %w", err)
				}
			}
		}
		return bw.Flush()
	}
	if err := writeFloats(bw, m.clf.Model.Weights.Data); err != nil {
		return fmt.Errorf("disthd: save payload: %w", err)
	}
	return bw.Flush()
}

// writeFloats emits the slice as little-endian float64 bits.
func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readFloats fills the slice from little-endian float64 bits.
func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8)
	for i := range xs {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return nil
}

// Load reads a model previously written by Save. The returned model is
// ready for inference and further deployment; its training statistics are
// not preserved.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("disthd: load header: %w", err)
		}
	}
	if hdr[0] != modelMagic {
		return nil, fmt.Errorf("disthd: bad magic 0x%x (not a DistHD model)", hdr[0])
	}
	if hdr[1] != modelVersion && hdr[1] != modelVersion1Bit {
		return nil, fmt.Errorf("disthd: unsupported model version %d", hdr[1])
	}
	features, dim, classes := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if features <= 0 || dim <= 0 || classes < 2 {
		return nil, fmt.Errorf("disthd: corrupt model shape %dx%dx%d", features, dim, classes)
	}
	var sigma float64
	if err := binary.Read(br, binary.LittleEndian, &sigma); err != nil {
		return nil, fmt.Errorf("disthd: load sigma: %w", err)
	}

	base := mat.New(dim, features)
	phase := make([]float64, dim)
	for _, block := range [][]float64{base.Data, phase} {
		if err := readFloats(br, block); err != nil {
			return nil, fmt.Errorf("disthd: load payload: %w", err)
		}
	}

	enc, err := encoding.NewRBFFromParams(base, phase, sigma, 1)
	if err != nil {
		return nil, err
	}
	mdl := model.New(classes, dim)
	cfg := core.DefaultConfig()
	cfg.Dim = dim
	out := &Model{
		clf:  &core.Classifier{Enc: enc, Model: mdl, Cfg: cfg},
		kind: EncoderRBF,
	}

	if hdr[1] == modelVersion1Bit {
		// Packed payload: ceil(D/64) sign words per class. The float
		// weights are reconstructed as ±1 so introspection views
		// (ClassHypervector, DimensionSaliency) stay meaningful; serving
		// runs on the packed bits.
		words := (dim + 63) / 64
		packed := bitpack.NewMatrix(classes, dim)
		buf := make([]byte, 8)
		for c := 0; c < classes; c++ {
			row := packed.Row(c)
			for j := 0; j < words; j++ {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, fmt.Errorf("disthd: load packed classes: %w", err)
				}
				row[j] = binary.LittleEndian.Uint64(buf)
			}
			if rem := dim % 64; rem != 0 {
				if tail := row[words-1] >> uint(rem); tail != 0 {
					return nil, fmt.Errorf("disthd: corrupt packed class %d (trailing bits set)", c)
				}
			}
			w := mdl.Weights.Row(c)
			for d := 0; d < dim; d++ {
				if packed.Bit(c, d) {
					w[d] = 1
				} else {
					w[d] = -1
				}
			}
		}
		mdl.RefreshNorms()
		out.packed = packed
		return out, nil
	}

	weights := make([]float64, classes*dim)
	if err := readFloats(br, weights); err != nil {
		return nil, fmt.Errorf("disthd: load payload: %w", err)
	}
	copy(mdl.Weights.Data, weights)
	mdl.RefreshNorms()
	return out, nil
}
