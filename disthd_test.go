package disthd_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	disthd "repro"
)

// smallTask returns a quick synthetic benchmark for API tests.
func smallTask(t testing.TB) (train, test disthd.DataSplit) {
	t.Helper()
	train, test, err := disthd.SyntheticBenchmark("PAMAP2", 0.04, 7)
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func quickConfig() disthd.Config {
	cfg := disthd.DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 8
	return cfg
}

func TestBenchmarkNames(t *testing.T) {
	names := disthd.BenchmarkNames()
	if len(names) != 5 {
		t.Fatalf("expected 5 benchmark names, got %v", names)
	}
	for _, n := range names {
		if _, _, err := disthd.SyntheticBenchmark(n, 0.01, 1); err != nil {
			t.Fatalf("benchmark %s failed to generate: %v", n, err)
		}
	}
	if _, _, err := disthd.SyntheticBenchmark("nope", 0.01, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTrainEvaluate(t *testing.T) {
	train, test := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes() != train.Classes || m.Dim() != 128 || m.Features() != 54 {
		t.Fatalf("model shape wrong: k=%d D=%d q=%d", m.Classes(), m.Dim(), m.Features())
	}
	acc, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 1.2/float64(train.Classes) {
		t.Fatalf("accuracy %.3f barely above chance", acc)
	}
	if m.Info.EffectiveDim < m.Dim() {
		t.Fatal("effective dim below physical dim")
	}
	if m.Info.Iterations == 0 || m.Info.FinalTrainAccuracy <= 0 {
		t.Fatalf("training info not populated: %+v", m.Info)
	}
}

func TestTrainDefaultConfigPath(t *testing.T) {
	train, _ := smallTask(t)
	// Default config (D=512) on the tiny split — just verify the happy
	// path end to end.
	m, err := disthd.Train(train.X, train.Y, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 512 {
		t.Fatalf("default Dim = %d, want 512", m.Dim())
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := disthd.Train(nil, nil, 2); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := disthd.Train([][]float64{{}}, []int{0}, 2); err == nil {
		t.Fatal("zero-feature samples accepted")
	}
	bad := quickConfig()
	bad.Encoder = disthd.EncoderKind(99)
	if _, err := disthd.TrainWithConfig([][]float64{{1, 2}}, []int{0}, 2, bad); err == nil {
		t.Fatal("unknown encoder accepted")
	}
}

func TestPredictAPIs(t *testing.T) {
	train, test := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := test.X[0]
	p, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p >= m.Classes() {
		t.Fatalf("prediction %d out of range", p)
	}
	p1, p2, err := m.PredictTop2(x)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p {
		t.Fatalf("top-2 first %d != predict %d", p1, p)
	}
	if p1 == p2 {
		t.Fatal("top-2 returned duplicates")
	}
	scores, err := m.Scores(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != m.Classes() {
		t.Fatalf("scores length %d", len(scores))
	}
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	if best != p {
		t.Fatal("scores argmax disagrees with Predict")
	}

	// width validation on every entry point
	short := x[:len(x)-1]
	if _, err := m.Predict(short); err == nil {
		t.Fatal("short input accepted by Predict")
	}
	if _, _, err := m.PredictTop2(short); err == nil {
		t.Fatal("short input accepted by PredictTop2")
	}
	if _, err := m.Scores(short); err == nil {
		t.Fatal("short input accepted by Scores")
	}
	if _, err := m.PredictBatch([][]float64{short}); err == nil {
		t.Fatal("short input accepted by PredictBatch")
	}
}

func TestTopKAccuracyAPI(t *testing.T) {
	train, test := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	a1, err := m.TopKAccuracy(test.X, test.Y, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.TopKAccuracy(test.X, test.Y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 < a1 {
		t.Fatalf("top-2 %.3f below top-1 %.3f", a2, a1)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	train, test := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := disthd.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	origPred, err := m.PredictBatch(test.X)
	if err != nil {
		t.Fatal(err)
	}
	loadPred, err := loaded.PredictBatch(test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range origPred {
		if origPred[i] != loadPred[i] {
			t.Fatalf("prediction %d changed after round trip: %d -> %d", i, origPred[i], loadPred[i])
		}
	}
	accA, _ := m.Evaluate(test.X, test.Y)
	accB, _ := loaded.Evaluate(test.X, test.Y)
	if math.Abs(accA-accB) > 1e-12 {
		t.Fatalf("accuracy changed after round trip: %v -> %v", accA, accB)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := disthd.Load(strings.NewReader("not a model")); err == nil {
		t.Fatal("garbage accepted by Load")
	}
	if _, err := disthd.Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted by Load")
	}
}

func TestDeployAndInject(t *testing.T) {
	train, test := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}

	dep, err := m.Deploy(8)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Bits() != 8 {
		t.Fatalf("Bits = %d", dep.Bits())
	}
	if dep.MemoryBits() != 8*m.Dim()*m.Classes() {
		t.Fatalf("MemoryBits = %d", dep.MemoryBits())
	}
	depAcc, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	// 8-bit quantization should cost almost nothing.
	if depAcc < cleanAcc-0.05 {
		t.Fatalf("8-bit deployment lost too much accuracy: %.3f -> %.3f", cleanAcc, depAcc)
	}

	// Heavy injection must hurt; Restore must heal bit-exactly.
	if err := dep.Inject(0.4, 99); err != nil {
		t.Fatal(err)
	}
	hurtAcc, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Restore(); err != nil {
		t.Fatal(err)
	}
	healedAcc, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if healedAcc != depAcc {
		t.Fatalf("Restore did not heal: %.3f != %.3f", healedAcc, depAcc)
	}
	t.Logf("clean=%.3f deployed=%.3f injured=%.3f", cleanAcc, depAcc, hurtAcc)

	if _, err := m.Deploy(3); err == nil {
		t.Fatal("unsupported precision accepted")
	}
	if _, err := dep.Predict(test.X[0][:3]); err == nil {
		t.Fatal("short input accepted by Deployed.Predict")
	}
}

// The paper's robustness shape on the public API: at the same injection
// rate, a 1-bit deployment degrades no more than an 8-bit one.
func TestLowPrecisionMoreRobust(t *testing.T) {
	train, test := smallTask(t)
	cfg := quickConfig()
	cfg.Dim = 256
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossAt := func(bits int) float64 {
		dep, err := m.Deploy(bits)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := dep.Evaluate(test.X, test.Y)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		const trials = 3
		for s := uint64(0); s < trials; s++ {
			if err := dep.Restore(); err != nil {
				t.Fatal(err)
			}
			if err := dep.Inject(0.10, 1000+s); err != nil {
				t.Fatal(err)
			}
			acc, err := dep.Evaluate(test.X, test.Y)
			if err != nil {
				t.Fatal(err)
			}
			if loss := clean - acc; loss > 0 {
				total += loss
			}
		}
		return total / trials
	}
	l1 := lossAt(1)
	l8 := lossAt(8)
	t.Logf("avg loss at 10%% flips: 1-bit=%.4f 8-bit=%.4f", l1, l8)
	if l1 > l8+0.05 {
		t.Fatalf("1-bit deployment (loss %.3f) should not be less robust than 8-bit (loss %.3f)", l1, l8)
	}
}

func TestCSVAndSplitAPI(t *testing.T) {
	csv := "1.0,2.0,0\n2.0,1.0,1\n1.1,2.1,0\n2.1,1.1,1\n1.2,2.2,0\n2.2,1.2,1\n"
	d, err := disthd.ReadCSV(strings.NewReader(csv), -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 || d.Classes != 2 {
		t.Fatalf("CSV parse wrong: n=%d k=%d", d.Len(), d.Classes)
	}
	train, test, err := disthd.Split(d, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != 6 {
		t.Fatal("split lost samples")
	}
	if err := disthd.ZScore(train, test); err != nil {
		t.Fatal(err)
	}
}

func TestZScoreValidation(t *testing.T) {
	a := disthd.DataSplit{X: [][]float64{{1, 2}}, Y: []int{0}, Classes: 2}
	b := disthd.DataSplit{X: [][]float64{{1, 2, 3}}, Y: []int{0}, Classes: 2}
	if err := disthd.ZScore(a, b); err == nil {
		t.Fatal("feature-width mismatch accepted")
	}
}

func TestPackedInference(t *testing.T) {
	train, test := smallTask(t)
	cfg := quickConfig()
	cfg.Dim = 256
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := m.Deploy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Packed path rejected for multi-bit deployments.
	dep8, err := m.Deploy(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep8.Packed(); err == nil {
		t.Fatal("packed engine handed out for 8-bit deployment")
	}

	// The packed path quantizes the query too, so per-sample agreement
	// with the float path is imperfect; what matters is accuracy parity.
	floatAcc, err := dep.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	packedOK := 0
	for i, x := range test.X {
		pp, err := dep.PredictPacked(x)
		if err != nil {
			t.Fatal(err)
		}
		if pp == test.Y[i] {
			packedOK++
		}
	}
	packedAcc := float64(packedOK) / float64(len(test.X))
	t.Logf("1-bit deployment: float-query acc=%.3f packed-query acc=%.3f", floatAcc, packedAcc)
	if packedAcc < floatAcc-0.15 {
		t.Fatalf("packed inference accuracy %.3f far below float path %.3f", packedAcc, floatAcc)
	}

	// The packed engine must reflect injected faults (cache invalidation):
	// after flipping half the model bits, packed predictions change too.
	beforeInjury := make([]int, len(test.X))
	for i, x := range test.X {
		p, err := dep.PredictPacked(x)
		if err != nil {
			t.Fatal(err)
		}
		beforeInjury[i] = p
	}
	if err := dep.Inject(0.5, 77); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, x := range test.X {
		p, err := dep.PredictPacked(x)
		if err != nil {
			t.Fatal(err)
		}
		if p != beforeInjury[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("packed engine did not observe the injected faults (stale cache)")
	}
	if _, err := dep.PredictPacked(test.X[0][:2]); err == nil {
		t.Fatal("short input accepted by PredictPacked")
	}
}

func TestDimensionSaliencyAndClassHypervector(t *testing.T) {
	train, _ := smallTask(t)
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	sal := m.DimensionSaliency()
	if len(sal) != m.Dim() {
		t.Fatalf("saliency length %d, want %d", len(sal), m.Dim())
	}
	anyPositive := false
	for _, v := range sal {
		if v < 0 {
			t.Fatalf("negative variance %v", v)
		}
		if v > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Fatal("all-zero saliency on a trained model")
	}
	hv, err := m.ClassHypervector(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hv) != m.Dim() {
		t.Fatalf("class hypervector length %d", len(hv))
	}
	// returned slice is a copy
	hv[0] += 100
	hv2, err := m.ClassHypervector(0)
	if err != nil {
		t.Fatal(err)
	}
	if hv2[0] == hv[0] {
		t.Fatal("ClassHypervector leaked internal storage")
	}
	if _, err := m.ClassHypervector(-1); err == nil {
		t.Fatal("negative class accepted")
	}
	if _, err := m.ClassHypervector(m.Classes()); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}

func TestReadIDXPublic(t *testing.T) {
	// Build a tiny IDX pair in memory (2 images of 2x2).
	img := &bytes.Buffer{}
	for _, v := range []uint32{0x00000803, 2, 2, 2} {
		if err := binaryWriteU32(img, v); err != nil {
			t.Fatal(err)
		}
	}
	img.Write([]byte{0, 255, 128, 64, 10, 20, 30, 40})
	lab := &bytes.Buffer{}
	for _, v := range []uint32{0x00000801, 2} {
		if err := binaryWriteU32(lab, v); err != nil {
			t.Fatal(err)
		}
	}
	lab.Write([]byte{1, 0})
	d, err := disthd.ReadIDX(img, lab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || len(d.X[0]) != 4 || d.Classes != 10 {
		t.Fatalf("IDX parse wrong: n=%d q=%d k=%d", d.Len(), len(d.X[0]), d.Classes)
	}
	if d.X[0][1] != 1.0 || d.Y[0] != 1 {
		t.Fatal("IDX values wrong")
	}
}

func binaryWriteU32(w *bytes.Buffer, v uint32) error {
	return binaryWrite(w, v)
}

func binaryWrite(w *bytes.Buffer, v uint32) error {
	w.WriteByte(byte(v >> 24))
	w.WriteByte(byte(v >> 16))
	w.WriteByte(byte(v >> 8))
	w.WriteByte(byte(v))
	return nil
}

func TestTrainRejectsNonFiniteAndRagged(t *testing.T) {
	y := []int{0, 1}
	if _, err := disthd.Train([][]float64{{1, 2}, {3, math.NaN()}}, y, 2); err == nil {
		t.Fatal("NaN feature accepted")
	}
	if _, err := disthd.Train([][]float64{{1, 2}, {3, math.Inf(1)}}, y, 2); err == nil {
		t.Fatal("Inf feature accepted")
	}
	if _, err := disthd.Train([][]float64{{1, 2}, {3}}, y, 2); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	train, _ := smallTask(t)
	cfg := quickConfig()
	cfg.Dim = 32
	cfg.Iterations = 2
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // corrupt the version field (little-endian u32 at offset 4)
	if _, err := disthd.Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong version accepted")
	}
	// truncated payload
	if _, err := disthd.Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated model accepted")
	}
}
