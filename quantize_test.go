package disthd

import (
	"bytes"
	"testing"
)

// trainQuantFixture trains a small healthy-D model on PAMAP2 synth data.
func trainQuantFixture(t *testing.T, dim int) (*Model, DataSplit, DataSplit) {
	t.Helper()
	train, test, err := SyntheticBenchmark("PAMAP2", 0.15, 7)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Dim = dim
	cfg.Iterations = 6
	m, err := TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m, train, test
}

// TestQuantize1BitServesCloseToF32 checks the 1-bit tier loses little
// accuracy at a healthy dimensionality and that the quantized model
// reports itself as such. The gap shrinks as D grows (sign-quantization
// noise averages out across dimensions — the paper's Fig. 8 robustness
// claim); at D=4096 on the PAMAP2 stand-in it is ~3 points.
func TestQuantize1BitServesCloseToF32(t *testing.T) {
	m, _, test := trainQuantFixture(t, 4096)
	q, err := m.Quantize1Bit()
	if err != nil {
		t.Fatalf("Quantize1Bit: %v", err)
	}
	if !q.Quantized() || m.Quantized() {
		t.Fatal("Quantized flags wrong way around")
	}
	accF, err := m.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatalf("f32 evaluate: %v", err)
	}
	accQ, err := q.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatalf("1-bit evaluate: %v", err)
	}
	if accQ < accF-0.06 {
		t.Fatalf("1-bit accuracy %.3f collapsed vs f32 %.3f", accQ, accF)
	}
	if _, err := m.Quantize1Bit(); err != nil {
		t.Fatalf("re-quantizing the champion must keep working: %v", err)
	}
	if _, err := q.Quantize1Bit(); err == nil {
		t.Fatal("quantizing a quantized model must error")
	}
}

// TestQuantizedModelIsFrozen pins the learning guards: Update and
// Retrain refuse on the packed tier.
func TestQuantizedModelIsFrozen(t *testing.T) {
	m, train, _ := trainQuantFixture(t, 256)
	q, err := m.Quantize1Bit()
	if err != nil {
		t.Fatalf("Quantize1Bit: %v", err)
	}
	if _, err := q.Update(train.X[0], train.Y[0]); err == nil {
		t.Fatal("Update on a quantized model must error")
	}
	if _, err := q.Retrain(train.X, train.Y, RetrainConfig{}); err == nil {
		t.Fatal("Retrain on a quantized model must error")
	}
}

// TestQuantizedSingleMatchesBatchAndReplica checks the three packed
// serving paths — single Predict, public PredictBatch, and the
// zero-alloc Replica — agree exactly, and that Scores stays on the
// cosine scale.
func TestQuantizedSingleMatchesBatchAndReplica(t *testing.T) {
	m, _, test := trainQuantFixture(t, 512)
	q, err := m.Quantize1Bit()
	if err != nil {
		t.Fatalf("Quantize1Bit: %v", err)
	}
	n := len(test.X)
	if n > 64 {
		n = 64
	}
	X := test.X[:n]

	batch, err := q.PredictBatch(X)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	rep, err := q.NewReplica(7) // non-divisor chunk size: exercises chunking
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	out := make([]int, n)
	if _, err := rep.PredictBatch(q, X, out); err != nil {
		t.Fatalf("replica PredictBatch: %v", err)
	}
	for i, x := range X {
		single, err := q.Predict(x)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if single != batch[i] || out[i] != batch[i] {
			t.Fatalf("row %d: single %d, batch %d, replica %d diverge", i, single, batch[i], out[i])
		}
		scores, err := q.Scores(x)
		if err != nil {
			t.Fatalf("Scores: %v", err)
		}
		for c, s := range scores {
			if s < -1 || s > 1 {
				t.Fatalf("row %d class %d: packed cosine %v outside [-1,1]", i, c, s)
			}
		}
		first, second, err := q.PredictTop2(x)
		if err != nil {
			t.Fatalf("PredictTop2: %v", err)
		}
		if first != single || second == first {
			t.Fatalf("row %d: top2 (%d,%d) inconsistent with predict %d", i, first, second, single)
		}
	}
	// An f32 replica of the same shape must also serve the quantized
	// model (the Swapper hot-swap scenario) with identical results.
	repF, err := m.NewReplica(16)
	if err != nil {
		t.Fatalf("NewReplica(f32): %v", err)
	}
	out2 := make([]int, n)
	if _, err := repF.PredictBatch(q, X, out2); err != nil {
		t.Fatalf("f32-built replica serving quantized: %v", err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("row %d: replica rebind diverged %d vs %d", i, out[i], out2[i])
		}
	}
}

// TestQuantizedSaveLoadRoundTrip checks the packed wire format: a
// quantized model round-trips through Save/Load with bit-identical
// packed classes and identical predictions.
func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	m, _, test := trainQuantFixture(t, 300) // non-multiple of 64: tail word on the wire
	q, err := m.Quantize1Bit()
	if err != nil {
		t.Fatalf("Quantize1Bit: %v", err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	f32Size := func() int {
		var b bytes.Buffer
		if err := m.Save(&b); err != nil {
			t.Fatalf("f32 Save: %v", err)
		}
		return b.Len()
	}()
	if buf.Len() >= f32Size {
		t.Fatalf("packed export %dB not smaller than f32 export %dB", buf.Len(), f32Size)
	}
	ld, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !ld.Quantized() {
		t.Fatal("loaded model lost its quantized flag")
	}
	for c := 0; c < q.Classes(); c++ {
		a, b := q.packed.Row(c), ld.packed.Row(c)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("class %d word %d: %#x vs %#x after round trip", c, j, a[j], b[j])
			}
		}
	}
	n := len(test.X)
	if n > 32 {
		n = 32
	}
	want, err := q.PredictBatch(test.X[:n])
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	got, err := ld.PredictBatch(test.X[:n])
	if err != nil {
		t.Fatalf("loaded PredictBatch: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: loaded model predicts %d, original %d", i, got[i], want[i])
		}
	}
}

// TestQuantizeRejectsLinearEncoder pins the encoder-family guard.
func TestQuantizeRejectsLinearEncoder(t *testing.T) {
	train, _, err := SyntheticBenchmark("DIABETES", 0.2, 3)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Dim = 128
	cfg.Iterations = 2
	cfg.Encoder = EncoderLinear
	m, err := TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := m.Quantize1Bit(); err == nil {
		t.Fatal("Quantize1Bit accepted a linear-encoded model")
	}
}
