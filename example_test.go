package disthd_test

// Runnable godoc examples for the core public-API lifecycle: train,
// predict, serialize, deploy. Each runs under `go test` and its printed
// output is verified, so the documented usage can never rot.

import (
	"bytes"
	"fmt"
	"log"

	disthd "repro"
)

// exampleData builds a small deterministic two-class training set: class 0
// clusters near (-1, ..., -1), class 1 near (+1, ..., +1).
func exampleData(n, features int) (X [][]float64, y []int) {
	for i := 0; i < n; i++ {
		row := make([]float64, features)
		sign := float64(1)
		if i%2 == 0 {
			sign = -1
		}
		for j := range row {
			// a fixed, sample-dependent wobble around the class center
			row[j] = sign + 0.3*float64((i*7+j*3)%5-2)/2
		}
		X = append(X, row)
		y = append(y, i%2)
	}
	return X, y
}

// ExampleTrain fits a DistHD classifier on a toy two-class problem and
// inspects the trained model's shape.
func ExampleTrain() {
	X, y := exampleData(60, 8)
	model, err := disthd.Train(X, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := model.Evaluate(X, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("features:", model.Features())
	fmt.Println("classes:", model.Classes())
	fmt.Println("training accuracy above 90%:", acc > 0.9)
	// Output:
	// features: 8
	// classes: 2
	// training accuracy above 90%: true
}

// ExampleModel_Predict classifies single samples, including the top-2
// primitive at the heart of the DistHD algorithm.
func ExampleModel_Predict() {
	X, y := exampleData(60, 8)
	model, err := disthd.Train(X, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	// A fresh sample near the class-1 center.
	probe := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	class, err := model.Predict(probe)
	if err != nil {
		log.Fatal(err)
	}
	first, second, err := model.PredictTop2(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicted class:", class)
	fmt.Println("top-2:", first, second)
	// Output:
	// predicted class: 1
	// top-2: 1 0
}

// ExampleModel_Save round-trips a trained model through its binary
// serialization; the loaded model classifies identically.
func ExampleModel_Save() {
	X, y := exampleData(60, 8)
	model, err := disthd.Train(X, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := disthd.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	agree := true
	for _, x := range X {
		a, _ := model.Predict(x)
		b, _ := loaded.Predict(x)
		if a != b {
			agree = false
		}
	}
	fmt.Println("loaded dim:", loaded.Dim())
	fmt.Println("predictions agree:", agree)
	// Output:
	// loaded dim: 512
	// predictions agree: true
}

// ExampleModel_Deploy packs a model into a 4-bit edge image, injects
// random bit flips (the paper's Fig. 8 hardware-error methodology), and
// measures the surviving accuracy.
func ExampleModel_Deploy() {
	X, y := exampleData(60, 8)
	model, err := disthd.Train(X, y, 2)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := model.Deploy(4)
	if err != nil {
		log.Fatal(err)
	}
	before, err := dep.Evaluate(X, y)
	if err != nil {
		log.Fatal(err)
	}
	// Flip 1% of the stored bits, then heal the image.
	if err := dep.Inject(0.01, 7); err != nil {
		log.Fatal(err)
	}
	after, err := dep.Evaluate(X, y)
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.Restore(); err != nil {
		log.Fatal(err)
	}
	healed, err := dep.Evaluate(X, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bits per dimension:", dep.Bits())
	fmt.Println("accuracy survives 1% flips:", after > 0.8)
	fmt.Println("restore heals exactly:", healed == before)
	// Output:
	// bits per dimension: 4
	// accuracy survives 1% flips: true
	// restore heals exactly: true
}

// ExampleOnlineLearner closes the loop at deployment time: feedback flows
// into a bounded window, windowed accuracy is tracked against the
// post-deployment baseline, and a warm retrain produces a successor model
// while the original stays untouched.
func ExampleOnlineLearner() {
	X, y := exampleData(60, 8)
	model, err := disthd.Train(X, y, 2)
	if err != nil {
		log.Fatal(err)
	}

	learner, err := disthd.NewOnlineLearner(model, disthd.OnlineConfig{
		Window:       32, // labeled feedback kept for retraining
		RecentWindow: 16, // span of the windowed accuracy estimate
		Retrain:      disthd.RetrainConfig{Iterations: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Deployed: labeled feedback trickles in.
	for i := range X {
		if _, err := learner.Observe(X[i], y[i]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("window holds %d samples\n", learner.WindowLen())
	fmt.Printf("windowed accuracy ≥ 0.9: %v\n", learner.WindowAccuracy() >= 0.9)

	// Warm-retrain a successor on the window; the original model is not
	// mutated, so it can keep serving until the successor is published.
	next, err := learner.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("successor shares shape: %v\n",
		next.Dim() == model.Dim() && next.Classes() == model.Classes())
	// Output:
	// window holds 32 samples
	// windowed accuracy ≥ 0.9: true
	// successor shares shape: true
}
