// Package disthd is a from-scratch Go implementation of DistHD (Wang,
// Huang, Imani — DAC 2023): a hyperdimensional-computing classifier with a
// learner-aware dynamic encoder that identifies and regenerates the
// hypervector dimensions misleading classification, reaching static-encoder
// accuracy at a fraction of the dimensionality.
//
// The public API covers the full lifecycle a downstream user needs:
//
//   - Train / TrainWithConfig fit a DistHD classifier on float feature
//     vectors with integer labels.
//   - Model.Predict / PredictTop2 / Scores / Evaluate run inference.
//   - Model.Save / Load round-trip a trained model through any io.Writer /
//     io.Reader.
//   - Model.Deploy packs the class hypervectors into a b-bit memory image
//     for edge deployment; Deployed.Inject simulates hardware bit flips so
//     the robustness of a configuration can be measured before committing
//     to silicon.
//   - Model.Quantize1Bit freezes a trained model into a servable 1-bit
//     view (the paper's most robust quantized configuration): packed
//     sign-bit class hypervectors, queries encoded straight to sign bits,
//     XOR+popcount scoring — several times f32 batched throughput at the
//     same shape. A quantized model predicts, serializes (packed wire
//     format), and serves through Replica, but refuses to learn; keep the
//     f32 champion for training and quantize successors from it, gating
//     each publish on measured holdout accuracy (serve does this on
//     POST /quantize).
//   - SyntheticBenchmark regenerates the paper's five evaluation datasets
//     (as synthetic stand-ins with matching shape) at any scale, and
//     ReadCSV/LoadCSVFile bring in real data.
//   - Model.NewReplica builds the per-goroutine zero-allocation batch
//     inference context that online serving is built on.
//   - OnlineLearner closes the loop at deployment time: a bounded window
//     of labeled feedback, windowed accuracy with drift detection and
//     per-class attribution (DriftReport names the classes whose accuracy
//     sags), and Model.Retrain — a warm rerun of the train → score →
//     regenerate pipeline on the window, its budget scaled by the measured
//     drift severity — producing a successor model while the original
//     keeps serving.
//   - Gate is the champion/challenger publication gate: a retrained
//     successor is scored against the serving incumbent on a stratified
//     held-out slice of the feedback window (SplitWindow) and replaces it
//     only on a passing margin — a retrain on a noisy or unlucky window
//     can produce a successor worse than the incumbent, and the gate keeps
//     such a challenger from ever serving. OnlineLearner.RetrainGated runs
//     the whole train → judge → refit-on-accept sequence.
//
// Online serving lives in the serve subpackage: a micro-batching Batcher
// that gives concurrent single-request callers batched-GEMM throughput, an
// atomic model hot-swap (Swapper), an HTTP Server speaking JSON and — on
// Content-Type application/x-disthd-frame — the compact binary frame
// protocol of serve/wire (3-7x the JSON wire throughput; decoded rows
// land directly in the replica's leased batch scratch), and a Learner
// that wires OnlineLearner behind the endpoints (/learn, /retrain with a
// ?force=1 gate bypass) with background drift-adaptive retraining routed
// through the Gate — run it with cmd/disthd-serve (-learn -auto-retrain;
// -no-gate, -holdout, -gate-margin tune the gate), load-test it with
// `hdbench -loadgen` (against a live server: -http <addr>, and
// -wire binary to measure the frame protocol end to end), and measure the
// adaptation win (frozen vs ungated vs gated, in-process or against a
// live server with -http) with `hdbench -driftgen`.
//
// Multi-tenant serving lives in serve/registry: a Registry keyed by
// model ID serves MANY models from one process behind /t/{model}/...
// routes (the first tenant also answers the plain routes, byte-identical
// to a single-model server), sharing a bounded replica budget with LRU
// parking of cold tenants and 429 admission control when the pool is
// pinned — run it with `disthd-serve -registry -tenant id=DEMO,...` and
// load it with `hdbench -loadgen -tenants N`.
//
// Fault-tolerant sharded serving lives in serve/cluster: a Coordinator
// fans batches out across worker shards behind per-worker circuit
// breakers with retries, backoff, hedging, and active health probes,
// degrades onto a locally held fallback model below quorum, and closes
// the learning loop by pulling shard models over GET /model, averaging
// them (AverageModels), and gating the merged candidate before
// republication — run it with cmd/disthd-cluster and prove the
// zero-dropped-requests invariant under kill/stall faults with
// `hdbench -chaos`.
//
// The research internals — the baselines (NeuralHD, baselineHD, MLP, SVM),
// the experiment harness that regenerates every table and figure of the
// paper, and the substrates they share — live under internal/ and are
// exercised by cmd/hdbench and the benchmarks in bench_test.go.
// ARCHITECTURE.md maps the full layer stack (kernels → encoding → model →
// learners → public API → serve) with pointers into every package.
//
// # Performance architecture
//
// Every hot path (batch encoding, similarity search, the adaptive training
// iteration) bottoms out in the cache-blocked, register-tiled kernels of
// internal/mat. The load-bearing pieces:
//
//   - mat.MulTInto / mat.MulTIntoFused: destination-passing A·Bᵀ — the
//     shape of both HDC hot paths — blocked over the shared dimension and
//     register-tiled 2×4, with an optional elementwise epilogue applied to
//     each output row while it is still cache-hot. On amd64 with AVX2+FMA
//     the micro-kernels dispatch to assembly (internal/mat/simd_amd64.s);
//     the pure-Go lane kernels produce bit-identical results everywhere
//     else.
//   - encoding.*.EncodeBatchInto: batch encoding as one blocked GEMM with
//     the encoder nonlinearity fused on, instead of N matrix-vector loops;
//     EncodeDimsBatch patches only the regenerated columns of an encoded
//     batch in place (the paper's cheap-retrain path).
//   - model.ScoreBatchInto / PredictBatchInto / Trainer.Epoch: batched
//     similarity and the training epoch over caller-owned buffers — the
//     steady-state loops allocate nothing.
//   - mat.ParallelFor: shard fan-out over a persistent worker pool;
//     mat.GetScratch: pooled temporaries.
//
// PERF.md records the measured before/after numbers; `make ci` is the
// tier-1 gate (vet + build + race tests + benchmark smoke) and `make
// bench` reproduces the measurements.
package disthd
