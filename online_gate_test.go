package disthd

import (
	"math"
	"testing"
)

func TestScaleForSeverity(t *testing.T) {
	base := RetrainConfig{Iterations: 4, Seed: 9}
	cases := []struct {
		name      string
		severity  float64
		threshold float64
		wantIters int
		wantBoost float64
	}{
		{"below threshold", 0.05, 0.10, 4, 0},
		{"at threshold", 0.10, 0.10, 4, 0},
		{"double", 0.20, 0.10, 8, 2},
		{"capped at 3x", 0.90, 0.10, 12, 3},
		{"threshold disabled", 0.90, 0, 4, 0},
		{"nan severity", math.NaN(), 0.10, 4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := base.ScaleForSeverity(tc.severity, tc.threshold)
			if got.Iterations != tc.wantIters {
				t.Fatalf("iterations %d, want %d", got.Iterations, tc.wantIters)
			}
			if got.RegenBoost != tc.wantBoost {
				t.Fatalf("regen boost %v, want %v", got.RegenBoost, tc.wantBoost)
			}
			if got.Seed != base.Seed {
				t.Fatalf("scaling changed the seed: %d", got.Seed)
			}
		})
	}
}

// TestRegenBoostWidensRetrain pins that a boosted retrain regenerates more
// dimensions than the unboosted one on the same window.
func TestRegenBoostWidensRetrain(t *testing.T) {
	m, _, test := onlineFixture(t, 11)
	cfg := RetrainConfig{Iterations: 3, Seed: 5}
	plain, err := m.Retrain(test.X, test.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RegenBoost = 3
	boosted, err := m.Retrain(test.X, test.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dPlain := plain.Info.RegeneratedDims - m.Info.RegeneratedDims
	dBoost := boosted.Info.RegeneratedDims - m.Info.RegeneratedDims
	if dBoost <= dPlain {
		t.Fatalf("boost regenerated %d dims, plain %d — boost must widen the redraw", dBoost, dPlain)
	}
}

// observeRow feeds one synthetic labeled sample whose leading feature
// uniquely identifies it, so split-disjointness can be checked by value.
func observeRow(t *testing.T, l *OnlineLearner, id int, label int) {
	t.Helper()
	x := make([]float64, l.Model().Features())
	x[0] = float64(id)
	for j := 1; j < len(x); j++ {
		x[j] = float64((id+j)%7) * 0.25
	}
	if _, err := l.Observe(x, label); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWindowStratified(t *testing.T) {
	m, _, _ := onlineFixture(t, 12)
	k := m.Classes()
	cases := []struct {
		name     string
		labels   []int // fed in order; index is the sample id
		holdout  float64
		wantHold int
	}{
		{"single-class window", []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, 0.2, 2},
		{"two per class", []int{0, 0, 1, 1, 2, 2}, 0.2, 3},
		{"holdout smaller than class count", []int{0, 1, 2, 3, 4, 5}, 0.2, 0},
		{"lone samples keep training", []int{0, 0, 0, 0, 0, 1}, 0.25, 1},
		{"disabled", []int{0, 0, 1, 1}, -1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := NewOnlineLearner(m, OnlineConfig{Window: 64, RecentWindow: 8, HoldoutFraction: tc.holdout})
			if err != nil {
				t.Fatal(err)
			}
			for id, label := range tc.labels {
				observeRow(t, l, id, label)
			}
			trainX, trainY, holdX, holdY := l.SplitWindow()
			if len(holdX) != tc.wantHold {
				t.Fatalf("holdout sized %d, want %d", len(holdX), tc.wantHold)
			}
			if len(trainX)+len(holdX) != len(tc.labels) {
				t.Fatalf("split covers %d+%d samples, window holds %d",
					len(trainX), len(holdX), len(tc.labels))
			}
			// Disjointness and coverage: every sample id appears exactly once
			// across the two slices, with its own label.
			seen := make(map[int]bool)
			check := func(X [][]float64, y []int) {
				for i, row := range X {
					id := int(row[0])
					if seen[id] {
						t.Fatalf("sample %d appears in both slices", id)
					}
					seen[id] = true
					if y[i] != tc.labels[id] {
						t.Fatalf("sample %d carries label %d, fed %d", id, y[i], tc.labels[id])
					}
				}
			}
			check(trainX, trainY)
			check(holdX, holdY)
			if len(seen) != len(tc.labels) {
				t.Fatalf("split lost samples: %d of %d", len(seen), len(tc.labels))
			}
			// Per-class holdout quotas: floor(h·n) with the ≥2 promotion.
			holdPerClass := make([]int, k)
			for _, c := range holdY {
				holdPerClass[c]++
			}
			totals := make([]int, k)
			for _, c := range tc.labels {
				totals[c]++
			}
			for c := 0; c < k; c++ {
				want := int(math.Max(0, tc.holdout) * float64(totals[c]))
				if want == 0 && totals[c] >= 2 && tc.holdout > 0 {
					want = 1
				}
				if holdPerClass[c] != want {
					t.Fatalf("class %d holds out %d, want %d", c, holdPerClass[c], want)
				}
			}
		})
	}
}

func TestDriftReportAttribution(t *testing.T) {
	m, _, test := onlineFixture(t, 13)
	l, err := NewOnlineLearner(m, OnlineConfig{Window: 256, RecentWindow: 32, DriftThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the best-represented class as the victim; every other observed
	// class keeps clean feedback, so only the victim's accuracy can sag.
	counts := make([]int, m.Classes())
	for _, c := range test.Y {
		counts[c]++
	}
	victim := 0
	for c, n := range counts {
		if n > counts[victim] {
			victim = c
		}
	}
	var victimX [][]float64
	for i, x := range test.X {
		if test.Y[i] == victim {
			victimX = append(victimX, x)
		}
	}
	if len(victimX) < 8 {
		t.Fatalf("fixture has only %d samples of class %d", len(victimX), victim)
	}

	// Clean phase: establish the per-class baselines.
	for i := 0; i < 64; i++ {
		if _, err := l.Observe(test.X[i%len(test.X)], test.Y[i%len(test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	rep := l.DriftReport()
	if rep.Drift {
		t.Fatalf("drift flagged on clean data: %+v", rep)
	}
	if len(rep.Classes) != m.Classes() {
		t.Fatalf("report covers %d classes, model has %d", len(rep.Classes), m.Classes())
	}

	// Severely shift ONLY the victim's samples: the drop must be attributed
	// to the victim, not to the classes still receiving clean feedback.
	for i := 0; i < 32; i++ {
		x := shiftRow(victimX[i%len(victimX)], 6.0)
		if _, err := l.Observe(x, victim); err != nil {
			t.Fatal(err)
		}
	}
	rep = l.DriftReport()
	vd := rep.Classes[victim]
	if vd.Observations == 0 {
		t.Fatal("victim class has no recent observations")
	}
	if !(vd.Drop > 0) {
		t.Fatalf("victim class drop %v, want > 0 (report %+v)", vd.Drop, rep)
	}
	worst, drop := rep.Worst()
	if worst != victim {
		t.Fatalf("worst class %d (drop %.3f), want victim %d (drop %.3f)", worst, drop, victim, vd.Drop)
	}
	if rep.Severity <= 0 {
		t.Fatalf("severity %v after a victim-class collapse", rep.Severity)
	}
}

// TestDriftReportClassAbsent pins the no-evidence contract: a class that
// never appears in the stream carries NaN accuracies, zero observations and
// a zero Drop.
func TestDriftReportClassAbsent(t *testing.T) {
	m, _, _ := onlineFixture(t, 14)
	l, err := NewOnlineLearner(m, OnlineConfig{Window: 64, RecentWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Feed only class 0 samples.
	for i := 0; i < 24; i++ {
		observeRow(t, l, i, 0)
	}
	rep := l.DriftReport()
	for c := 1; c < m.Classes(); c++ {
		cd := rep.Classes[c]
		if cd.Observations != 0 || cd.Drop != 0 {
			t.Fatalf("absent class %d attributed: %+v", c, cd)
		}
		if !math.IsNaN(cd.BaselineAccuracy) || !math.IsNaN(cd.WindowAccuracy) {
			t.Fatalf("absent class %d carries accuracy evidence: %+v", c, cd)
		}
	}
	if rep.Classes[0].Observations == 0 {
		t.Fatal("observed class lost its observations")
	}
}

func TestGateVerdicts(t *testing.T) {
	m, _, test := onlineFixture(t, 15)
	// A second model with a different seed: same task, different holdout
	// verdicts — whichever way the margin lands, the threshold cases below
	// derive from the measured value.
	cfg := DefaultConfig()
	cfg.Dim = m.Dim()
	cfg.Iterations = 4
	cfg.Seed = 99
	hold := test.X[:40]
	holdY := test.Y[:40]

	g := NewGate(GateConfig{})
	if _, err := g.Evaluate(nil, m, hold, holdY); err == nil {
		t.Fatal("nil champion accepted")
	}
	if _, err := g.Evaluate(m, nil, hold, holdY); err == nil {
		t.Fatal("nil challenger accepted")
	}
	if _, err := g.Evaluate(m, m, hold, holdY[:10]); err == nil {
		t.Fatal("ragged holdout accepted")
	}

	// Empty holdout: no evidence, publish by default.
	v, err := g.Evaluate(m, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Publish || v.HoldoutSize != 0 {
		t.Fatalf("empty holdout verdict %+v, want default publish", v)
	}

	// Self-play: champion == challenger ties at margin 0 and the tie
	// publishes under the default MinMargin 0.
	v, err = g.Evaluate(m, m, hold, holdY)
	if err != nil {
		t.Fatal(err)
	}
	if v.Margin != 0 || !v.Publish {
		t.Fatalf("self-play verdict %+v, want margin 0 publish", v)
	}
	if v.HoldoutSize != len(hold) {
		t.Fatalf("holdout size %d, want %d", v.HoldoutSize, len(hold))
	}

	// Tie exactly AT the threshold publishes; a hair above it rejects.
	atTie := NewGate(GateConfig{MinMargin: v.Margin})
	if tv, _ := atTie.Evaluate(m, m, hold, holdY); !tv.Publish {
		t.Fatalf("margin %v at threshold %v rejected, ties must publish", tv.Margin, v.Margin)
	}
	above := NewGate(GateConfig{MinMargin: v.Margin + 1e-6})
	if tv, _ := above.Evaluate(m, m, hold, holdY); tv.Publish {
		t.Fatalf("margin %v below threshold %v published", tv.Margin, v.Margin+1e-6)
	}
	// A negative MinMargin tolerates a bounded regression.
	lenient := NewGate(GateConfig{MinMargin: -1})
	if tv, _ := lenient.Evaluate(m, m, hold, holdY); !tv.Publish {
		t.Fatal("lenient gate rejected a tie")
	}
}

func TestRetrainGatedRejectKeepsIncumbent(t *testing.T) {
	m, _, test := onlineFixture(t, 16)
	l, err := NewOnlineLearner(m, OnlineConfig{
		Window:       128,
		RecentWindow: 16,
		Retrain:      RetrainConfig{Iterations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clean feedback: the incumbent is already good, so no challenger can
	// lead it by 0.5 on the holdout — a guaranteed, deterministic reject.
	for i := range test.X {
		if _, err := l.Observe(test.X[i], test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	strict := NewGate(GateConfig{MinMargin: 0.5})
	next, v, err := l.RetrainGated(strict, false)
	if err != nil {
		t.Fatal(err)
	}
	if next != nil {
		t.Fatal("rejected challenger was returned as published")
	}
	if v.Publish || v.Forced {
		t.Fatalf("verdict %+v, want reject", v)
	}
	if v.HoldoutSize == 0 {
		t.Fatal("strict gate judged without a holdout")
	}
	if l.Model() != m {
		t.Fatal("rejection rebound the learner away from the incumbent")
	}
	if l.Retrains() != 0 || l.Rejections() != 1 {
		t.Fatalf("retrains=%d rejections=%d, want 0/1", l.Retrains(), l.Rejections())
	}

	// Forced publish: same strict gate, but force wins. The verdict still
	// reports the losing margin, and the learner rebinds to the successor.
	next, v, err = l.RetrainGated(strict, true)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || l.Model() != next {
		t.Fatal("forced publish did not rebind the successor")
	}
	if !v.Forced {
		t.Fatal("forced verdict not marked")
	}
	if v.Publish {
		t.Fatalf("force must not rewrite the gate's own verdict: %+v", v)
	}
	if l.Retrains() != 1 || l.Rejections() != 1 {
		t.Fatalf("retrains=%d rejections=%d after force, want 1/1", l.Retrains(), l.Rejections())
	}
}
