package disthd

import (
	"reflect"
	"testing"
)

// feedStream observes rows[i] with labels[i] into l, failing the test on
// any error.
func feedStream(t *testing.T, l *OnlineLearner, rows [][]float64, labels []int) {
	t.Helper()
	for i, x := range rows {
		if _, err := l.Observe(x, labels[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOnlineLearnerExportRestoreBitwise pins the park/wake contract at its
// root: an Export restored through NewOnlineLearnerFromState is
// bit-identical — window contents, rings, baseline, cursors, counters —
// and the two learners stay in lockstep on any further shared stream.
func TestOnlineLearnerExportRestoreBitwise(t *testing.T) {
	m, _, test := onlineFixture(t, 31)
	cfg := OnlineConfig{Window: 48, RecentWindow: 16, Seed: 9}
	l, err := NewOnlineLearner(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed past the window capacity so the ring has wrapped, with a drifted
	// tail so the rings hold a mix of outcomes.
	n := 64
	for i := 0; i < n; i++ {
		x := test.X[i%len(test.X)]
		if i >= n/2 {
			x = shiftRow(x, 3)
		}
		if _, err := l.Observe(x, test.Y[i%len(test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Export()
	pristine := l.Export() // independent copy, for the no-write-through check
	restored, err := NewOnlineLearnerFromState(m, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Export(), st) {
		t.Fatal("restored learner's Export differs from the snapshot it was built from")
	}
	if got, want := restored.Observations(), l.Observations(); got != want {
		t.Fatalf("restored observations %d, want %d", got, want)
	}
	if got, want := restored.WindowAccuracy(), l.WindowAccuracy(); got != want {
		t.Fatalf("restored window accuracy %v, want %v", got, want)
	}
	if got, want := restored.BaselineAccuracy(), l.BaselineAccuracy(); got != want {
		t.Fatalf("restored baseline accuracy %v, want %v", got, want)
	}
	// A snapshot is a fork: both learners must evolve identically from here.
	feedStream(t, l, test.X[:32], test.Y[:32])
	feedStream(t, restored, test.X[:32], test.Y[:32])
	if !reflect.DeepEqual(restored.Export(), l.Export()) {
		t.Fatal("original and restored learners diverged on an identical continuation stream")
	}
	// Feeding the learners must not have written through into the
	// snapshot: st still matches the independent copy from the fork point.
	if !reflect.DeepEqual(st, pristine) {
		t.Fatal("snapshot mutated by a learner restored from it; restore did not deep-copy")
	}
}

// TestOnlineLearnerExportRestoreReservoir pins the sampler continuity:
// in reservoir mode, admission after a restore must draw exactly the
// random stream the original learner would have — otherwise the two
// windows diverge even on identical input.
func TestOnlineLearnerExportRestoreReservoir(t *testing.T) {
	m, _, test := onlineFixture(t, 33)
	cfg := OnlineConfig{Window: 24, RecentWindow: 8, Reservoir: true, Seed: 5}
	l, err := NewOnlineLearner(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overfill so reservoir replacement (the sampler-driven path) is active.
	for i := 0; i < 3*24; i++ {
		if _, err := l.Observe(test.X[i%len(test.X)], test.Y[i%len(test.Y)]); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := NewOnlineLearnerFromState(m, cfg, l.Export())
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, l, test.X[:40], test.Y[:40])
	feedStream(t, restored, test.X[:40], test.Y[:40])
	if !reflect.DeepEqual(restored.Export(), l.Export()) {
		t.Fatal("reservoir learners diverged after restore; sampler state did not carry over")
	}
}

// TestOnlineLearnerRestoreRejectsMismatch proves a snapshot that does not
// match the restore-time geometry is rejected instead of silently
// truncated.
func TestOnlineLearnerRestoreRejectsMismatch(t *testing.T) {
	m, _, test := onlineFixture(t, 35)
	cfg := OnlineConfig{Window: 32, RecentWindow: 8}
	l, err := NewOnlineLearner(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, l, test.X[:16], test.Y[:16])
	st := l.Export()
	if _, err := NewOnlineLearnerFromState(m, cfg, nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := NewOnlineLearnerFromState(m, OnlineConfig{Window: 64, RecentWindow: 8}, st); err == nil {
		t.Fatal("snapshot restored under a different Window")
	}
	if _, err := NewOnlineLearnerFromState(m, OnlineConfig{Window: 32, RecentWindow: 16}, st); err == nil {
		t.Fatal("snapshot restored under a different RecentWindow")
	}
	bad := *st
	bad.WinPos = cfg.Window
	if _, err := NewOnlineLearnerFromState(m, cfg, &bad); err == nil {
		t.Fatal("out-of-range window cursor accepted")
	}
	bad = *st
	bad.ClsRecentN = bad.ClsRecentN[:1]
	if _, err := NewOnlineLearnerFromState(m, cfg, &bad); err == nil {
		t.Fatal("truncated class tallies accepted")
	}
}
