# Tier-1 verification and benchmark targets for the DistHD reproduction.
#
# `make ci` is the documented tier-1 gate: vet, build, race-enabled tests,
# and a one-iteration benchmark smoke pass so the perf harness itself cannot
# rot. `make bench` produces the numbers recorded in PERF.md.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench bench-kernels

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the perf harness
# without paying for stable timings.
bench-smoke:
	$(GO) test ./... -run xxx -bench . -benchtime 1x

# The kernel and end-to-end benchmarks behind PERF.md, with allocation
# reporting and enough repetitions for benchstat.
bench:
	$(GO) test ./internal/mat ./internal/encoding ./internal/model \
		-run xxx -bench . -benchtime 1s -count 5
	$(GO) test . -run xxx -bench 'BenchmarkTrainDistHD|BenchmarkInference' \
		-benchtime 2x -count 5

bench-kernels:
	$(GO) test ./internal/mat -run xxx -bench . -benchtime 1s
