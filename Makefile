# Tier-1 verification and benchmark targets for the DistHD reproduction.
#
# `make ci` is the documented tier-1 gate: formatting, vet, the exported-
# identifier doc check on the public surface, build, race-enabled tests
# (which include the runnable godoc Examples in the root and serve
# packages), and a one-iteration benchmark smoke pass so the perf harness
# itself cannot rot. `make bench` produces the numbers recorded in PERF.md.

GO ?= go

.PHONY: ci fmt-check vet doc-check build test race bench-smoke fuzz-smoke bench-compare drift-smoke drift-http-smoke chaos-smoke wire-smoke registry-smoke bench bench-kernels bench-serve bench-drift bench-cluster bench-registry

ci: fmt-check vet doc-check build race bench-smoke fuzz-smoke bench-compare drift-smoke drift-http-smoke chaos-smoke wire-smoke registry-smoke

# gofmt must be a no-op across the tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The public surface (root package, serve, and its subpackages) must not
# export an undocumented identifier.
doc-check:
	$(GO) run ./cmd/doccheck . ./serve ./serve/cluster ./serve/wire ./serve/registry

build:
	$(GO) build ./...

# Tier-1 tests run with a shuffled execution order so inter-test state
# dependencies cannot hide.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# One iteration of every benchmark: catches bit-rot in the perf harness
# without paying for stable timings.
bench-smoke:
	$(GO) test ./... -run xxx -bench . -benchtime 1x

# The fuzz targets' seed corpora, run deterministically (plain `go test`
# executes every f.Add seed; no fuzzing engine involved).
fuzz-smoke:
	$(GO) test -run 'FuzzFeedbackWindow' .
	$(GO) test -run 'FuzzBitpackRoundTrip' ./internal/bitpack
	$(GO) test -run 'FuzzWireFrame' ./serve/wire

# The perf-regression gate: re-measure the SIMD-critical kernel benchmarks
# (bitpack score/pack, mat GEMM/dot) and fail if any regressed past the
# committed baseline with non-overlapping sample ranges (see
# cmd/benchcompare for the noise rules). The threshold is calibrated to
# this host: the shared-VM scheduler shifts whole benchmark runs by ±35%
# between quiet and loaded phases (measured on identical code), so the
# gate flags only distribution shifts a kernel bug would cause — a
# dropped asm tier is ≥3×, a lost fused path ≥2× — not phase drift.
# Finer trends are tracked across PRs by the committed BENCH_*.json
# snapshots. Refresh bench/baseline.txt on a quiet machine when a
# deliberate perf change lands.
bench-compare:
	@$(GO) test ./internal/bitpack -run xxx -bench 'BenchmarkScoreBatch|BenchmarkPackSigns' \
		-benchtime 50ms -count 5 > bench/current.txt
	@$(GO) test ./internal/mat -run xxx -bench 'BenchmarkMulTInto|BenchmarkDotBatch' \
		-benchtime 50ms -count 5 >> bench/current.txt
	@$(GO) test ./serve/cluster -run xxx -bench 'BenchmarkDirectWorker|BenchmarkCoordinator' \
		-benchtime 50ms -count 5 >> bench/current.txt
	@$(GO) test ./serve/registry -run xxx -bench 'BenchmarkRegistryPredictBatch|BenchmarkRegistryDispatch' \
		-benchtime 50ms -count 5 >> bench/current.txt
	$(GO) run ./cmd/benchcompare -baseline bench/baseline.txt -threshold 1.50 \
		-json BENCH_PR9.json bench/current.txt

# One CI-sized pass of the streaming drift benchmark, so the closed-loop
# learner harness cannot rot.
drift-smoke:
	$(GO) run ./cmd/hdbench -driftgen -quick

# The live-HTTP drift loop end to end: launch a real disthd-serve process
# with the gated learner, drive one quick `hdbench -driftgen -http` pass
# against it over loopback, and assert a clean SIGTERM drain.
drift-http-smoke:
	sh scripts/drift_http_smoke.sh

# The fault-tolerance invariant end to end at the process level: two live
# worker shards behind a disthd-cluster coordinator, one SIGKILLed under
# load, zero dropped requests required, clean coordinator drain asserted.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# The binary frame protocol end to end at the process level: a live
# disthd-serve driven by `hdbench -loadgen -http ... -wire binary` (and a
# JSON pass for comparison), per-format /stats counters checked, clean
# SIGTERM drain asserted.
wire-smoke:
	sh scripts/wire_smoke.sh

# The multi-tenant registry end to end at the process level: a live
# `disthd-serve -registry` with three boot tenants through a 2-replica
# pool, mixed JSON+binary traffic from `hdbench -loadgen -tenants -http`
# (which installs three more over PUT /t/{id}), forced LRU eviction
# churn asserted from /stats, per-tenant stats scraped, DELETE drain and
# clean SIGTERM drain asserted.
registry-smoke:
	sh scripts/registry_smoke.sh

# The kernel and end-to-end benchmarks behind PERF.md, with allocation
# reporting and enough repetitions for benchstat.
bench:
	$(GO) test ./internal/mat ./internal/encoding ./internal/model \
		-run xxx -bench . -benchtime 1s -count 5
	$(GO) test . -run xxx -bench 'BenchmarkTrainDistHD|BenchmarkInference' \
		-benchtime 2x -count 5

bench-kernels:
	$(GO) test ./internal/mat -run xxx -bench . -benchtime 1s

# The serving table of PERF.md: per-request Predict vs the micro-batching
# Batcher across dimensionality and concurrency.
bench-serve:
	$(GO) test ./serve -run xxx -bench 'Serve(PerRequest|Batched)|WireHandlerBatch' \
		-benchtime 2s -count 3

# The streaming table of PERF.md: windowed accuracy of the frozen model vs
# the ungated and gated adaptive servers over a drifting labeled stream,
# then the bad-teacher pass (35% of feedback labels flipped) where the
# champion/challenger gate must reject the garbage challengers the ungated
# server publishes.
bench-drift:
	$(GO) run ./cmd/hdbench -driftgen
	$(GO) run ./cmd/hdbench -driftgen -drift-kinds shift -drift-label-noise 0.35

# The fault-tolerance table of PERF.md: coordinator overhead vs a direct
# worker call on the happy path, then the in-process chaos run (worker
# killed at 1/3, worker stalled at 2/3) with its latency distribution.
bench-cluster:
	$(GO) test ./serve/cluster -run xxx -bench . -benchtime 2s -count 3
	$(GO) run ./cmd/hdbench -chaos -dataset PAMAP2 -dim 128 -loadgen-scale 0.05 \
		-duration 4s -concurrency 3

# The multi-tenant table of PERF.md: per-tenant batched throughput and
# Acquire/Release dispatch overhead, plus the mixed-workload loadgen with
# a pool small enough to force eviction churn.
bench-registry:
	$(GO) test ./serve/registry -run xxx -bench . -benchtime 2s -count 3
	$(GO) run ./cmd/hdbench -loadgen -tenants 3 -pool 2 -dim 128 \
		-loadgen-scale 0.05 -concurrency 8 -duration 2s
