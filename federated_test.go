package disthd_test

// Tests pinning the MergeModels merge contract: every shape or encoder
// disagreement must fail with a descriptive error, never merge silently.

import (
	"strings"
	"testing"

	disthd "repro"
)

func TestMergeModelsClassCountMismatch(t *testing.T) {
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.04, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 3
	cfg.RegenRate = 0
	cfg.Seed = 31

	// Same data, same frozen encoder — but one party trained against a
	// larger global label set (a label its shard never saw). The class
	// hypervector matrices have different shapes and must not merge.
	a, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes+1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classes() == b.Classes() {
		t.Fatal("fixture broken: class counts agree")
	}
	_, err = disthd.MergeModels(a, b)
	if err == nil {
		t.Fatal("models with different class counts merged silently")
	}
	if !strings.Contains(err.Error(), "classes") {
		t.Fatalf("class-count error is not descriptive: %v", err)
	}
	// The error should name which argument disagreed.
	if !strings.Contains(err.Error(), "model 1") {
		t.Fatalf("error does not locate the offending model: %v", err)
	}
	// Order must not matter.
	if _, err := disthd.MergeModels(b, a); err == nil {
		t.Fatal("reversed argument order merged silently")
	}
}

func TestMergeModelsNilModel(t *testing.T) {
	train, _, err := disthd.SyntheticBenchmark("DIABETES", 0.04, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfg := disthd.DefaultConfig()
	cfg.Dim = 64
	cfg.Iterations = 2
	cfg.RegenRate = 0
	cfg.Seed = 31
	a, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disthd.MergeModels(a, nil); err == nil {
		t.Fatal("nil model accepted (previously a panic)")
	}
	if _, err := disthd.MergeModels(nil); err == nil {
		t.Fatal("lone nil model accepted")
	}
}
