package disthd

import (
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// DataSplit is a labeled set of samples in plain Go slices.
type DataSplit struct {
	// X holds one sample per row.
	X [][]float64
	// Y holds the integer label of each row, in [0, Classes).
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of samples.
func (d DataSplit) Len() int { return len(d.X) }

// BenchmarkNames lists the five evaluation datasets of the paper's
// Table I, available as synthetic stand-ins through SyntheticBenchmark.
func BenchmarkNames() []string {
	return []string{"MNIST", "UCIHAR", "ISOLET", "PAMAP2", "DIABETES"}
}

// SyntheticBenchmark generates the named benchmark dataset (z-score
// normalized train/test splits) at the given scale. Scale 1.0 yields a few
// thousand samples; smaller values shrink proportionally (minimum 60
// samples per split). Generation is deterministic in (name, scale, seed).
func SyntheticBenchmark(name string, scale float64, seed uint64) (train, test DataSplit, err error) {
	tr, te, err := dataset.Load(name, scale, seed)
	if err != nil {
		return DataSplit{}, DataSplit{}, err
	}
	return fromDataset(tr), fromDataset(te), nil
}

// fromDataset converts the internal dataset container to the public one.
func fromDataset(d *dataset.Dataset) DataSplit {
	out := DataSplit{
		X:       make([][]float64, d.N()),
		Y:       make([]int, d.N()),
		Classes: d.Classes,
	}
	for i := 0; i < d.N(); i++ {
		row := make([]float64, d.Features())
		copy(row, d.X.Row(i))
		out.X[i] = row
		out.Y[i] = d.Y[i]
	}
	return out
}

// toDataset converts the public container to the internal one.
func toDataset(d DataSplit, name string) (*dataset.Dataset, error) {
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("disthd: %d samples but %d labels", len(d.X), len(d.Y))
	}
	out := &dataset.Dataset{Name: name, Classes: d.Classes}
	out.Y = make([]int, len(d.Y))
	copy(out.Y, d.Y)
	out.X = mat.FromRows(d.X)
	return out, out.Validate()
}

// ReadCSV parses a numeric CSV stream into a DataSplit: labelCol holds the
// integer class label (-1 selects the last column), every other column a
// float feature. Labels are re-indexed densely by ascending value.
func ReadCSV(r io.Reader, labelCol int) (DataSplit, error) {
	d, err := dataset.ReadCSV(r, labelCol)
	if err != nil {
		return DataSplit{}, err
	}
	return fromDataset(d), nil
}

// LoadCSVFile reads a CSV dataset from disk. See ReadCSV for the format.
func LoadCSVFile(path string, labelCol int) (DataSplit, error) {
	f, err := os.Open(path)
	if err != nil {
		return DataSplit{}, fmt.Errorf("disthd: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(f, labelCol)
}

// ZScore fits per-feature standardization on train and applies it to both
// splits in place — the leakage-free protocol every experiment in this
// repository uses. Call it before Train when features are on raw scales.
func ZScore(train, test DataSplit) error {
	tr, err := toDataset(train, "train")
	if err != nil {
		return err
	}
	te, err := toDataset(test, "test")
	if err != nil {
		return err
	}
	if tr.Features() != te.Features() {
		return fmt.Errorf("disthd: train has %d features, test has %d", tr.Features(), te.Features())
	}
	n := dataset.FitNormalizer(tr)
	n.Apply(tr)
	n.Apply(te)
	for i := range train.X {
		copy(train.X[i], tr.X.Row(i))
	}
	for i := range test.X {
		copy(test.X[i], te.X.Row(i))
	}
	return nil
}

// Split shuffles d deterministically and partitions it into train/test
// with the given train fraction.
func Split(d DataSplit, trainFrac float64, seed uint64) (train, test DataSplit, err error) {
	ds, err := toDataset(d, "split")
	if err != nil {
		return DataSplit{}, DataSplit{}, err
	}
	tr, te := ds.Split(trainFrac, seed)
	return fromDataset(tr), fromDataset(te), nil
}

// ReadIDX parses the MNIST IDX binary pair (images + labels) into a
// DataSplit with pixels scaled to [0, 1], so the real MNIST files drop
// into the pipeline in place of the synthetic stand-in.
func ReadIDX(images, labels io.Reader, classes int) (DataSplit, error) {
	d, err := dataset.ReadIDX(images, labels, classes)
	if err != nil {
		return DataSplit{}, err
	}
	return fromDataset(d), nil
}
