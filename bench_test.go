package disthd_test

// One testing.B benchmark per table and figure of the DistHD paper's
// evaluation. Each benchmark runs the corresponding experiment of
// internal/experiments at CI scale (Options.Quick), so `go test -bench=.`
// regenerates every artifact end to end and reports its cost. Full-scale
// tables (the numbers recorded in EXPERIMENTS.md) come from:
//
//	go run ./cmd/hdbench -exp all -scale 0.35
//
// plus additional micro-benchmarks for the primitives that dominate the
// paper's efficiency claims (encoding, similarity search, training step).

import (
	"io"
	"testing"

	disthd "repro"
	"repro/internal/experiments"
)

// run executes one experiment per benchmark iteration, discarding output.
func run(b *testing.B, id string) {
	b.Helper()
	o := experiments.QuickOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table I (dataset inventory).
func BenchmarkTable1Datasets(b *testing.B) { run(b, "table1") }

// BenchmarkFig2aStaticDimSweep regenerates Fig. 2(a): static-encoder HDC
// accuracy vs dimensionality and iterations, with the DNN reference.
func BenchmarkFig2aStaticDimSweep(b *testing.B) { run(b, "fig2a") }

// BenchmarkFig2bTopK regenerates Fig. 2(b): top-1/2/3 accuracy of a static
// HDC model across training iterations.
func BenchmarkFig2bTopK(b *testing.B) { run(b, "fig2b") }

// BenchmarkFig4Accuracy regenerates Fig. 4: the six-learner accuracy
// comparison across the five benchmark datasets.
func BenchmarkFig4Accuracy(b *testing.B) { run(b, "fig4") }

// BenchmarkFig5Efficiency regenerates Fig. 5: training time and inference
// latency for the iso-accuracy configurations.
func BenchmarkFig5Efficiency(b *testing.B) { run(b, "fig5") }

// BenchmarkFig6ROC regenerates Fig. 6: ROC curves under the two α/β
// weight-parameter settings.
func BenchmarkFig6ROC(b *testing.B) { run(b, "fig6") }

// BenchmarkFig7Convergence regenerates Fig. 7: accuracy vs iterations and
// vs dimensionality for DistHD / NeuralHD / baselineHD.
func BenchmarkFig7Convergence(b *testing.B) { run(b, "fig7") }

// BenchmarkFig8Robustness regenerates the Fig. 8 table: quality loss under
// memory bit flips for the 8-bit DNN and DistHD across dims × precisions.
func BenchmarkFig8Robustness(b *testing.B) { run(b, "fig8") }

// BenchmarkAblationAlgorithm2 regenerates the prose-vs-literal Algorithm 2
// comparison (the discrepancy documented in DESIGN.md).
func BenchmarkAblationAlgorithm2(b *testing.B) { run(b, "ablA2") }

// BenchmarkAblationRegenRate regenerates the regeneration-rate sweep.
func BenchmarkAblationRegenRate(b *testing.B) { run(b, "ablReg") }

// BenchmarkAblationEncoder regenerates the RBF-vs-linear encoder ablation.
func BenchmarkAblationEncoder(b *testing.B) { run(b, "ablEnc") }

// --- primitive micro-benchmarks -----------------------------------------

// benchData caches a small task for the micro-benchmarks.
func benchData(b *testing.B) (train, test disthd.DataSplit) {
	b.Helper()
	train, test, err := disthd.SyntheticBenchmark("UCIHAR", 0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

// BenchmarkTrainDistHD measures end-to-end DistHD training at D=256.
func BenchmarkTrainDistHD(b *testing.B) {
	train, _ := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferenceSingle measures per-sample inference latency at D=256
// (encode + similarity search), the quantity behind Fig. 5's latency rows.
func BenchmarkInferenceSingle(b *testing.B) {
	train, test := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 8
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(test.X[i%len(test.X)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicaPredictBatch measures the serving replica's batch path:
// rows through the leased-scratch EncodeBatchInto → PredictBatchInto
// pipeline. ReportAllocs pins the zero-allocation steady state the serve
// package depends on.
func BenchmarkReplicaPredictBatch(b *testing.B) {
	train, test := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 8
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := m.NewReplica(64)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = test.X[i%len(test.X)]
	}
	out := make([]int, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.PredictBatch(m, rows, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "samples/op")
}

// BenchmarkInferenceBatch measures batched inference throughput.
func BenchmarkInferenceBatch(b *testing.B) {
	train, test := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 8
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictBatch(test.X); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(test.X)), "samples/op")
}

// BenchmarkDeployInject measures the fault-injection path of Fig. 8.
func BenchmarkDeployInject(b *testing.B) {
	train, test := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 8
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := m.Deploy(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dep.Restore(); err != nil {
			b.Fatal(err)
		}
		if err := dep.Inject(0.05, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := dep.Evaluate(test.X, test.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveLoad measures model serialization round trips.
func BenchmarkSaveLoad(b *testing.B) {
	train, _ := benchData(b)
	cfg := disthd.DefaultConfig()
	cfg.Dim = 256
	cfg.Iterations = 5
	m, err := disthd.TrainWithConfig(train.X, train.Y, train.Classes, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := m.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// discardCounter is an io.Writer that counts bytes, avoiding buffer growth
// noise in BenchmarkSaveLoad.
type discardCounter int64

func (d *discardCounter) Write(p []byte) (int, error) {
	*d += discardCounter(len(p))
	return len(p), nil
}

// BenchmarkEdgeCost regenerates the analytical edge-cost extension table.
func BenchmarkEdgeCost(b *testing.B) { run(b, "edgecost") }

// BenchmarkGridSearch regenerates the comparator-tuning protocol table.
func BenchmarkGridSearch(b *testing.B) { run(b, "gridsearch") }

// BenchmarkHeadline regenerates the abstract-claims summary.
func BenchmarkHeadline(b *testing.B) { run(b, "headline") }

// BenchmarkInputNoise regenerates the input-noise robustness extension.
func BenchmarkInputNoise(b *testing.B) { run(b, "inputnoise") }

// BenchmarkFig4Stats regenerates the multi-seed Fig. 4 variant.
func BenchmarkFig4Stats(b *testing.B) { run(b, "fig4stats") }

// BenchmarkHDTrainers regenerates the trainer-rule comparison extension.
func BenchmarkHDTrainers(b *testing.B) { run(b, "hdtrainers") }
