package disthd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/rng"
)

// RetrainConfig controls a warm-start retrain (Model.Retrain,
// OnlineLearner.Retrain): how many train → score → regenerate rounds of the
// staged pipeline run over the feedback window. The zero value picks the
// documented defaults.
type RetrainConfig struct {
	// Iterations is the number of warm train+regenerate rounds (default 5 —
	// a window is small and the model starts warm, so a fraction of the
	// cold-start budget suffices).
	Iterations int
	// LearningRate overrides the model's training-time η when positive.
	LearningRate float64
	// Seed drives the retrain's shuffle and regeneration streams; retrains
	// with different seeds explore different regeneration draws.
	Seed uint64
}

// withDefaults fills unset fields.
func (c RetrainConfig) withDefaults() RetrainConfig {
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WithAttempt returns a copy of c whose Seed is re-derived for the n-th
// retrain attempt (0-based): deterministic in (Seed, n), distinct across
// attempts, so every retrain in a sequence explores fresh shuffle and
// regeneration draws. OnlineLearner and serve.Learner both derive their
// per-retrain seeds through this single definition.
func (c RetrainConfig) WithAttempt(n uint64) RetrainConfig {
	c.Seed += (n + 1) * 0x9e3779b97f4a7c15
	return c
}

// Retrain returns a NEW model warm-started from m and adapted to (X, y) by
// rerunning the staged regeneration pipeline: the class weights and encoder
// are deep-copied, then Iterations rounds of adaptive learning → dimension
// scoring → regeneration run over the window. m itself is never touched, so
// it can keep serving while the retrain runs — publish the returned model
// through serve.Swapper when it is ready (the two always have identical
// shape, which is exactly the Swapper's compatibility contract).
func (m *Model) Retrain(X [][]float64, y []int, cfg RetrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(X) == 0 {
		return nil, fmt.Errorf("disthd: empty retrain window")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("disthd: %d samples but %d labels", len(X), len(y))
	}
	for i, row := range X {
		if len(row) != m.Features() {
			return nil, fmt.Errorf("disthd: retrain sample %d has %d features, model expects %d", i, len(row), m.Features())
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("disthd: non-finite feature %v at retrain sample %d, column %d", v, i, j)
			}
		}
	}

	cc := m.clf.Cfg
	cc.Iterations = cfg.Iterations
	if cfg.LearningRate > 0 {
		cc.LearningRate = cfg.LearningRate
	}
	cc.Seed = cfg.Seed
	// A short warm run has no room for the cold-start plateau heuristics.
	cc.Patience = 0

	dup := m.clf.CloneDetached(cfg.Seed ^ 0x5e7a11)
	p, err := core.Resume(dup, mat.FromRows(X), y, cc)
	if err != nil {
		return nil, err
	}
	clf, stats := p.Run()
	// Effective dimensionality keeps accumulating across the model's
	// lifetime: D* = D + every regeneration it ever absorbed. A model that
	// came through Load carries no training Info, so fall back to its
	// physical dimensionality as the base.
	baseEffective := m.Info.EffectiveDim
	if baseEffective == 0 {
		baseEffective = m.Dim()
	}
	return &Model{
		clf:  clf,
		kind: m.kind,
		Info: TrainInfo{
			Iterations:         len(stats.Iters),
			RegeneratedDims:    m.Info.RegeneratedDims + stats.TotalRegenerated,
			EffectiveDim:       baseEffective + stats.TotalRegenerated,
			FinalTrainAccuracy: stats.FinalTrainAcc(),
		},
	}, nil
}

// OnlineConfig configures an OnlineLearner. The zero value picks the
// documented defaults.
type OnlineConfig struct {
	// Window bounds the labeled-feedback buffer the learner retrains from
	// (default 512 samples).
	Window int
	// Reservoir, when true, keeps a uniform reservoir sample of the whole
	// feedback stream instead of the most recent Window samples. A sliding
	// window (the default) tracks drift fastest; a reservoir preserves
	// memory of the pre-drift distribution, trading adaptation speed for
	// resistance to catastrophic forgetting.
	Reservoir bool
	// RecentWindow is how many of the latest observations the windowed
	// accuracy estimate covers (default 64).
	RecentWindow int
	// DriftThreshold flags drift when the windowed accuracy falls this far
	// below the baseline accuracy measured right after the model was bound.
	// The zero value selects the default 0.15 — a literal threshold of 0
	// cannot be expressed; pass a small positive value (e.g. 0.001) for a
	// hair-trigger detector.
	DriftThreshold float64
	// MinObservations is how many observations must accumulate after a
	// (re)bind before drift detection may fire (default 2·RecentWindow: one
	// RecentWindow to freeze the baseline, one to fill the recent ring).
	MinObservations int
	// Retrain configures the warm retrain the learner runs over its window.
	Retrain RetrainConfig
	// Seed drives the reservoir-sampling stream.
	Seed uint64
}

// withDefaults fills unset fields and validates the rest.
func (c OnlineConfig) withDefaults() (OnlineConfig, error) {
	if c.Window == 0 {
		c.Window = 512
	}
	if c.RecentWindow == 0 {
		c.RecentWindow = 64
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.15
	}
	if c.MinObservations == 0 {
		c.MinObservations = 2 * c.RecentWindow
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Retrain = c.Retrain.withDefaults()
	if c.Window < 1 || c.RecentWindow < 1 || c.DriftThreshold < 0 || c.MinObservations < 1 {
		return c, fmt.Errorf("disthd: invalid online config %+v", c)
	}
	return c, nil
}

// OnlineLearner closes the DistHD loop at serving time: it ingests labeled
// feedback into a bounded window, tracks windowed accuracy against the
// baseline measured when the model was bound, detects distribution drift,
// and — on demand — warm-retrains a successor model on the window by
// rerunning the staged regeneration pipeline (core encode → adapt → score →
// regenerate, via Model.Retrain).
//
// Observing feedback never mutates the bound model: the model may be
// serving traffic concurrently, and in-place weight updates would race with
// readers. Adaptation happens exclusively through Retrain, which trains a
// deep copy and rebinds it — the pattern serve.Learner uses to publish
// successors through a Swapper with zero serving interruption.
//
// An OnlineLearner is not safe for concurrent use; callers serialize access
// (serve.Learner wraps it with a mutex).
type OnlineLearner struct {
	m   *Model
	cfg OnlineConfig

	// Sliding/reservoir feedback window.
	winX    []float64 // capacity Window × features, row-major
	winY    []int
	winLen  int
	winPos  int    // next slot to overwrite (sliding mode)
	seen    uint64 // stream length so far (reservoir mode)
	sampler *rng.Rand

	// Windowed accuracy over the last RecentWindow observations.
	recent    []bool
	recentLen int
	recentPos int
	recentOK  int

	// Baseline accuracy, frozen over the first RecentWindow observations
	// after the model was (re)bound.
	obsSinceBind uint64
	baseOK       int
	baseN        int

	observations uint64
	attempts     uint64
	retrains     uint64
}

// NewOnlineLearner builds a learner bound to m.
func NewOnlineLearner(m *Model, cfg OnlineConfig) (*OnlineLearner, error) {
	if m == nil {
		return nil, fmt.Errorf("disthd: NewOnlineLearner needs a model")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &OnlineLearner{
		m:       m,
		cfg:     c,
		winX:    make([]float64, c.Window*m.Features()),
		winY:    make([]int, c.Window),
		sampler: rng.New(c.Seed ^ 0x0b5e7),
		recent:  make([]bool, c.RecentWindow),
	}, nil
}

// Model returns the currently bound model.
func (l *OnlineLearner) Model() *Model { return l.m }

// Observe ingests one labeled feedback sample: the bound model classifies
// x, the outcome feeds the windowed-accuracy and drift estimates, and the
// sample joins the retrain window. It returns whether the prediction was
// correct. The bound model's weights are NOT updated (see the type comment).
func (l *OnlineLearner) Observe(x []float64, label int) (correct bool, err error) {
	if len(x) != l.m.Features() {
		return false, fmt.Errorf("disthd: feedback has %d features, model expects %d", len(x), l.m.Features())
	}
	if label < 0 || label >= l.m.Classes() {
		return false, fmt.Errorf("disthd: feedback label %d outside [0,%d)", label, l.m.Classes())
	}
	pred, err := l.m.Predict(x)
	if err != nil {
		return false, err
	}
	correct = pred == label

	// Accuracy bookkeeping.
	l.observations++
	l.obsSinceBind++
	if l.baseN < l.cfg.RecentWindow {
		l.baseN++
		if correct {
			l.baseOK++
		}
	}
	if l.recentLen == l.cfg.RecentWindow {
		if l.recent[l.recentPos] {
			l.recentOK--
		}
	} else {
		l.recentLen++
	}
	l.recent[l.recentPos] = correct
	if correct {
		l.recentOK++
	}
	l.recentPos = (l.recentPos + 1) % l.cfg.RecentWindow

	// Window admission: sliding ring, or uniform reservoir over the stream.
	l.seen++
	slot := -1
	if l.winLen < l.cfg.Window {
		slot = l.winLen
		l.winLen++
	} else if l.cfg.Reservoir {
		if j := l.sampler.Intn(int(l.seen)); j < l.cfg.Window {
			slot = j
		}
	} else {
		slot = l.winPos
	}
	if slot >= 0 {
		copy(l.winX[slot*l.m.Features():(slot+1)*l.m.Features()], x)
		l.winY[slot] = label
		l.winPos = (slot + 1) % l.cfg.Window
	}
	return correct, nil
}

// Observations returns how many feedback samples the learner has ever seen.
func (l *OnlineLearner) Observations() uint64 { return l.observations }

// Retrains returns how many retrains completed through this learner.
func (l *OnlineLearner) Retrains() uint64 { return l.retrains }

// WindowLen returns how many samples the retrain window currently holds.
func (l *OnlineLearner) WindowLen() int { return l.winLen }

// WindowAccuracy returns the model's accuracy over the last RecentWindow
// observations (NaN before any observation arrives).
func (l *OnlineLearner) WindowAccuracy() float64 {
	if l.recentLen == 0 {
		return math.NaN()
	}
	return float64(l.recentOK) / float64(l.recentLen)
}

// BaselineAccuracy returns the accuracy frozen over the first RecentWindow
// observations after the model was (re)bound (NaN before any arrive).
func (l *OnlineLearner) BaselineAccuracy() float64 {
	if l.baseN == 0 {
		return math.NaN()
	}
	return float64(l.baseOK) / float64(l.baseN)
}

// DriftDetected reports whether the windowed accuracy has fallen more than
// DriftThreshold below the baseline, with both estimates mature
// (MinObservations since the model was bound).
func (l *OnlineLearner) DriftDetected() bool {
	if l.obsSinceBind < uint64(l.cfg.MinObservations) || l.baseN < l.cfg.RecentWindow {
		return false
	}
	return l.WindowAccuracy() < l.BaselineAccuracy()-l.cfg.DriftThreshold
}

// Window returns a copy of the retrain window (oldest-first in sliding
// mode; sample order is meaningless in reservoir mode).
func (l *OnlineLearner) Window() (X [][]float64, y []int) {
	q := l.m.Features()
	X = make([][]float64, l.winLen)
	y = make([]int, l.winLen)
	for i := 0; i < l.winLen; i++ {
		// In a full sliding ring, winPos is the oldest slot.
		slot := i
		if !l.cfg.Reservoir && l.winLen == l.cfg.Window {
			slot = (l.winPos + i) % l.cfg.Window
		}
		row := make([]float64, q)
		copy(row, l.winX[slot*q:(slot+1)*q])
		X[i] = row
		y[i] = l.winY[slot]
	}
	return X, y
}

// SetModel rebinds the learner to a successor model of identical shape —
// called after a retrained or externally swapped model goes live. The
// feedback window is kept (its labels are still valid training data); the
// accuracy baseline and drift state reset, since they measured the old
// model.
func (l *OnlineLearner) SetModel(m *Model) error {
	if m == nil {
		return fmt.Errorf("disthd: SetModel needs a model")
	}
	if m.Features() != l.m.Features() || m.Dim() != l.m.Dim() || m.Classes() != l.m.Classes() {
		return fmt.Errorf("disthd: successor model shaped %d/%d/%d, learner bound to %d/%d/%d",
			m.Features(), m.Dim(), m.Classes(), l.m.Features(), l.m.Dim(), l.m.Classes())
	}
	l.m = m
	l.obsSinceBind = 0
	l.baseOK, l.baseN = 0, 0
	l.recentLen, l.recentPos, l.recentOK = 0, 0, 0
	return nil
}

// Retrain warm-retrains a successor on the current window (Model.Retrain),
// rebinds the learner to it, and returns it. The previous model is left
// untouched, so a caller serving it can publish the successor atomically
// afterwards. Each attempt uses a distinct deterministic seed
// (RetrainConfig.WithAttempt), so repeated retrains explore fresh
// regeneration draws.
func (l *OnlineLearner) Retrain() (*Model, error) {
	if l.winLen == 0 {
		return nil, fmt.Errorf("disthd: retrain with an empty feedback window")
	}
	X, y := l.Window()
	rc := l.cfg.Retrain.WithAttempt(l.attempts)
	l.attempts++
	next, err := l.m.Retrain(X, y, rc)
	if err != nil {
		return nil, err
	}
	l.retrains++
	if err := l.SetModel(next); err != nil {
		return nil, err
	}
	return next, nil
}
