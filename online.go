package disthd

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/rng"
)

// RetrainConfig controls a warm-start retrain (Model.Retrain,
// OnlineLearner.Retrain): how many train → score → regenerate rounds of the
// staged pipeline run over the feedback window. The zero value picks the
// documented defaults.
type RetrainConfig struct {
	// Iterations is the number of warm train+regenerate rounds (default 5 —
	// a window is small and the model starts warm, so a fraction of the
	// cold-start budget suffices).
	Iterations int
	// LearningRate overrides the model's training-time η when positive.
	LearningRate float64
	// Seed drives the retrain's shuffle and regeneration streams; retrains
	// with different seeds explore different regeneration draws.
	Seed uint64
	// RegenBoost multiplies the model's regeneration rate R for this retrain
	// when > 1 (capped so the boosted rate never exceeds 0.5): a severe drift
	// warrants redrawing more of the encoder, not just more epochs. Values
	// <= 1 leave the model's own rate untouched. ScaleForSeverity sets it
	// alongside the iteration budget.
	RegenBoost float64
}

// withDefaults fills unset fields.
func (c RetrainConfig) withDefaults() RetrainConfig {
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WithAttempt returns a copy of c whose Seed is re-derived for the n-th
// retrain attempt (0-based): deterministic in (Seed, n), distinct across
// attempts, so every retrain in a sequence explores fresh shuffle and
// regeneration draws. OnlineLearner and serve.Learner both derive their
// per-retrain seeds through this single definition.
func (c RetrainConfig) WithAttempt(n uint64) RetrainConfig {
	c.Seed += (n + 1) * 0x9e3779b97f4a7c15
	return c
}

// maxSeverityScale caps how far ScaleForSeverity may inflate a retrain
// budget: a catastrophic accuracy collapse triples the warm budget, never
// more — retrains must stay orders of magnitude cheaper than the drift
// timescale they compensate.
const maxSeverityScale = 3.0

// ScaleForSeverity returns a copy of c whose retrain budget grows with the
// measured drift severity (the accuracy drop below baseline, see
// DriftReport): with severity at or below threshold the config is returned
// unchanged, beyond it both the iteration budget and the regeneration rate
// scale linearly with severity/threshold, capped at 3×. A mild sag gets the
// cheap warm rerun; a collapse earns more epochs AND more redrawn encoder
// dimensions, because a collapsed class geometry needs new dimensions, not
// just re-fitted weights. Threshold <= 0 disables scaling.
func (c RetrainConfig) ScaleForSeverity(severity, threshold float64) RetrainConfig {
	if threshold <= 0 || severity <= threshold || math.IsNaN(severity) {
		return c
	}
	scale := severity / threshold
	if scale > maxSeverityScale {
		scale = maxSeverityScale
	}
	c = c.withDefaults()
	c.Iterations = int(math.Ceil(float64(c.Iterations) * scale))
	c.RegenBoost = scale
	return c
}

// Retrain returns a NEW model warm-started from m and adapted to (X, y) by
// rerunning the staged regeneration pipeline: the class weights and encoder
// are deep-copied, then Iterations rounds of adaptive learning → dimension
// scoring → regeneration run over the window. m itself is never touched, so
// it can keep serving while the retrain runs — publish the returned model
// through serve.Swapper when it is ready (the two always have identical
// shape, which is exactly the Swapper's compatibility contract).
func (m *Model) Retrain(X [][]float64, y []int, cfg RetrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if m.Quantized() {
		return nil, fmt.Errorf("disthd: quantized model is frozen; retrain the f32 champion and re-quantize")
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("disthd: empty retrain window")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("disthd: %d samples but %d labels", len(X), len(y))
	}
	for i, row := range X {
		if len(row) != m.Features() {
			return nil, fmt.Errorf("disthd: retrain sample %d has %d features, model expects %d", i, len(row), m.Features())
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("disthd: non-finite feature %v at retrain sample %d, column %d", v, i, j)
			}
		}
	}

	cc := m.clf.Cfg
	cc.Iterations = cfg.Iterations
	if cfg.LearningRate > 0 {
		cc.LearningRate = cfg.LearningRate
	}
	cc.Seed = cfg.Seed
	if cfg.RegenBoost > 1 {
		cc.RegenRate = math.Min(0.5, cc.RegenRate*cfg.RegenBoost)
	}
	// A short warm run has no room for the cold-start plateau heuristics.
	cc.Patience = 0

	dup := m.clf.CloneDetached(cfg.Seed ^ 0x5e7a11)
	p, err := core.Resume(dup, mat.FromRows(X), y, cc)
	if err != nil {
		return nil, err
	}
	clf, stats := p.Run()
	// Effective dimensionality keeps accumulating across the model's
	// lifetime: D* = D + every regeneration it ever absorbed. A model that
	// came through Load carries no training Info, so fall back to its
	// physical dimensionality as the base.
	baseEffective := m.Info.EffectiveDim
	if baseEffective == 0 {
		baseEffective = m.Dim()
	}
	return &Model{
		clf:  clf,
		kind: m.kind,
		Info: TrainInfo{
			Iterations:         len(stats.Iters),
			RegeneratedDims:    m.Info.RegeneratedDims + stats.TotalRegenerated,
			EffectiveDim:       baseEffective + stats.TotalRegenerated,
			FinalTrainAccuracy: stats.FinalTrainAcc(),
		},
	}, nil
}

// OnlineConfig configures an OnlineLearner. The zero value picks the
// documented defaults.
type OnlineConfig struct {
	// Window bounds the labeled-feedback buffer the learner retrains from
	// (default 512 samples).
	Window int
	// Reservoir, when true, keeps a uniform reservoir sample of the whole
	// feedback stream instead of the most recent Window samples. A sliding
	// window (the default) tracks drift fastest; a reservoir preserves
	// memory of the pre-drift distribution, trading adaptation speed for
	// resistance to catastrophic forgetting.
	Reservoir bool
	// RecentWindow is how many of the latest observations the windowed
	// accuracy estimate covers (default 64).
	RecentWindow int
	// DriftThreshold flags drift when the windowed accuracy falls this far
	// below the baseline accuracy measured right after the model was bound.
	// The zero value selects the default 0.15 — a literal threshold of 0
	// cannot be expressed; pass a small positive value (e.g. 0.001) for a
	// hair-trigger detector.
	DriftThreshold float64
	// MinObservations is how many observations must accumulate after a
	// (re)bind before drift detection may fire (default 2·RecentWindow: one
	// RecentWindow to freeze the baseline, one to fill the recent ring).
	MinObservations int
	// HoldoutFraction is the fraction of the feedback window carved into a
	// stratified held-out slice — excluded from retrain data, used by the
	// champion/challenger Gate to score an incumbent against a freshly
	// retrained successor (SplitWindow documents the stratification). The
	// zero value selects the default 0.20; pass a negative value to disable
	// the holdout entirely (every sample trains, the gate has no evidence
	// and publishes unconditionally). Must stay below 1.
	HoldoutFraction float64
	// Retrain configures the warm retrain the learner runs over its window.
	Retrain RetrainConfig
	// Seed drives the reservoir-sampling stream.
	Seed uint64
}

// withDefaults fills unset fields and validates the rest.
func (c OnlineConfig) withDefaults() (OnlineConfig, error) {
	if c.Window == 0 {
		c.Window = 512
	}
	if c.RecentWindow == 0 {
		c.RecentWindow = 64
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.15
	}
	if c.MinObservations == 0 {
		c.MinObservations = 2 * c.RecentWindow
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HoldoutFraction == 0 {
		c.HoldoutFraction = 0.20
	}
	if c.HoldoutFraction < 0 {
		c.HoldoutFraction = 0
	}
	c.Retrain = c.Retrain.withDefaults()
	if c.Window < 1 || c.RecentWindow < 1 || c.DriftThreshold < 0 || c.MinObservations < 1 || c.HoldoutFraction >= 1 {
		return c, fmt.Errorf("disthd: invalid online config %+v", c)
	}
	return c, nil
}

// OnlineLearner closes the DistHD loop at serving time: it ingests labeled
// feedback into a bounded window, tracks windowed accuracy against the
// baseline measured when the model was bound, detects distribution drift,
// and — on demand — warm-retrains a successor model on the window by
// rerunning the staged regeneration pipeline (core encode → adapt → score →
// regenerate, via Model.Retrain).
//
// Observing feedback never mutates the bound model: the model may be
// serving traffic concurrently, and in-place weight updates would race with
// readers. Adaptation happens exclusively through Retrain, which trains a
// deep copy and rebinds it — the pattern serve.Learner uses to publish
// successors through a Swapper with zero serving interruption.
//
// An OnlineLearner is not safe for concurrent use; callers serialize access
// (serve.Learner wraps it with a mutex).
type OnlineLearner struct {
	m   *Model
	cfg OnlineConfig

	// Sliding/reservoir feedback window.
	winX    []float64 // capacity Window × features, row-major
	winY    []int
	winLen  int
	winPos  int    // next slot to overwrite (sliding mode)
	seen    uint64 // stream length so far (reservoir mode)
	sampler *rng.Rand

	// Windowed accuracy over the last RecentWindow observations. The label
	// ring mirrors the outcome ring so evicted observations can be removed
	// from the per-class tallies.
	recent      []bool
	recentLabel []int
	recentLen   int
	recentPos   int
	recentOK    int

	// Per-class tallies over the recent ring — the drift-attribution
	// substrate: clsRecentN[c]/clsRecentOK[c] count observations and correct
	// predictions whose TRUE label is c.
	clsRecentN  []int
	clsRecentOK []int

	// Baseline accuracy, frozen over the first RecentWindow observations
	// after the model was (re)bound, with the matching per-class tallies.
	obsSinceBind uint64
	baseOK       int
	baseN        int
	clsBaseN     []int
	clsBaseOK    []int

	observations uint64
	attempts     uint64
	retrains     uint64
	rejections   uint64
}

// NewOnlineLearner builds a learner bound to m.
func NewOnlineLearner(m *Model, cfg OnlineConfig) (*OnlineLearner, error) {
	if m == nil {
		return nil, fmt.Errorf("disthd: NewOnlineLearner needs a model")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	k := m.Classes()
	return &OnlineLearner{
		m:           m,
		cfg:         c,
		winX:        make([]float64, c.Window*m.Features()),
		winY:        make([]int, c.Window),
		sampler:     rng.New(c.Seed ^ 0x0b5e7),
		recent:      make([]bool, c.RecentWindow),
		recentLabel: make([]int, c.RecentWindow),
		clsRecentN:  make([]int, k),
		clsRecentOK: make([]int, k),
		clsBaseN:    make([]int, k),
		clsBaseOK:   make([]int, k),
	}, nil
}

// Model returns the currently bound model.
func (l *OnlineLearner) Model() *Model { return l.m }

// Config returns the learner's configuration with all defaults applied —
// callers composing their own retrain schedules (serve.Learner) read the
// effective DriftThreshold and HoldoutFraction from here rather than
// re-deriving the defaults.
func (l *OnlineLearner) Config() OnlineConfig { return l.cfg }

// Observe ingests one labeled feedback sample: the bound model classifies
// x, the outcome feeds the windowed-accuracy and drift estimates, and the
// sample joins the retrain window. It returns whether the prediction was
// correct. The bound model's weights are NOT updated (see the type comment).
func (l *OnlineLearner) Observe(x []float64, label int) (correct bool, err error) {
	if len(x) != l.m.Features() {
		return false, fmt.Errorf("disthd: feedback has %d features, model expects %d", len(x), l.m.Features())
	}
	if label < 0 || label >= l.m.Classes() {
		return false, fmt.Errorf("disthd: feedback label %d outside [0,%d)", label, l.m.Classes())
	}
	pred, err := l.m.Predict(x)
	if err != nil {
		return false, err
	}
	correct = pred == label

	// Accuracy bookkeeping, overall and per class (the true label's class
	// owns the observation — attribution asks "whose samples is the model
	// getting wrong", not "what is it mispredicting them as").
	l.observations++
	l.obsSinceBind++
	if l.baseN < l.cfg.RecentWindow {
		l.baseN++
		l.clsBaseN[label]++
		if correct {
			l.baseOK++
			l.clsBaseOK[label]++
		}
	}
	if l.recentLen == l.cfg.RecentWindow {
		old := l.recentLabel[l.recentPos]
		l.clsRecentN[old]--
		if l.recent[l.recentPos] {
			l.recentOK--
			l.clsRecentOK[old]--
		}
	} else {
		l.recentLen++
	}
	l.recent[l.recentPos] = correct
	l.recentLabel[l.recentPos] = label
	l.clsRecentN[label]++
	if correct {
		l.recentOK++
		l.clsRecentOK[label]++
	}
	l.recentPos = (l.recentPos + 1) % l.cfg.RecentWindow

	// Window admission: sliding ring, or uniform reservoir over the stream.
	l.seen++
	slot := -1
	if l.winLen < l.cfg.Window {
		slot = l.winLen
		l.winLen++
	} else if l.cfg.Reservoir {
		if j := l.sampler.Intn(int(l.seen)); j < l.cfg.Window {
			slot = j
		}
	} else {
		slot = l.winPos
	}
	if slot >= 0 {
		copy(l.winX[slot*l.m.Features():(slot+1)*l.m.Features()], x)
		l.winY[slot] = label
		l.winPos = (slot + 1) % l.cfg.Window
	}
	return correct, nil
}

// Observations returns how many feedback samples the learner has ever seen.
func (l *OnlineLearner) Observations() uint64 { return l.observations }

// Retrains returns how many retrains completed through this learner.
func (l *OnlineLearner) Retrains() uint64 { return l.retrains }

// WindowLen returns how many samples the retrain window currently holds.
func (l *OnlineLearner) WindowLen() int { return l.winLen }

// WindowAccuracy returns the model's accuracy over the last RecentWindow
// observations (NaN before any observation arrives).
func (l *OnlineLearner) WindowAccuracy() float64 {
	if l.recentLen == 0 {
		return math.NaN()
	}
	return float64(l.recentOK) / float64(l.recentLen)
}

// BaselineAccuracy returns the accuracy frozen over the first RecentWindow
// observations after the model was (re)bound (NaN before any arrive).
func (l *OnlineLearner) BaselineAccuracy() float64 {
	if l.baseN == 0 {
		return math.NaN()
	}
	return float64(l.baseOK) / float64(l.baseN)
}

// DriftDetected reports whether the windowed accuracy has fallen more than
// DriftThreshold below the baseline, with both estimates mature
// (MinObservations since the model was bound).
func (l *OnlineLearner) DriftDetected() bool {
	if l.obsSinceBind < uint64(l.cfg.MinObservations) || l.baseN < l.cfg.RecentWindow {
		return false
	}
	return l.WindowAccuracy() < l.BaselineAccuracy()-l.cfg.DriftThreshold
}

// ClassDrift attributes drift to one class: how the model's accuracy on
// samples of this class moved between the post-bind baseline and the recent
// observation window.
type ClassDrift struct {
	// Class is the class index.
	Class int
	// BaselineAccuracy is the class's accuracy over the frozen post-bind
	// baseline (NaN when the class never appeared in it).
	BaselineAccuracy float64
	// WindowAccuracy is the class's accuracy over the recent observation
	// window (NaN when the class is absent from it).
	WindowAccuracy float64
	// Drop is BaselineAccuracy - WindowAccuracy when both are defined, and 0
	// otherwise — a class absent from either window cannot be attributed.
	Drop float64
	// Observations counts the class's samples in the recent window.
	Observations int
}

// DriftReport is a point-in-time attribution of drift: the overall
// accuracy drop plus a per-class breakdown identifying which classes'
// windowed accuracy sags. OnlineLearner.DriftReport produces it; the
// severity feeds RetrainConfig.ScaleForSeverity and the serving stats
// endpoint surfaces the per-class rows.
type DriftReport struct {
	// Drift mirrors DriftDetected at the time of the report.
	Drift bool
	// Severity is the overall accuracy drop below baseline, clamped to
	// >= 0. It stays 0 until both estimates are mature (the same
	// MinObservations guard DriftDetected applies): an immature drop is
	// sampling noise, and letting it through would hand a 3× severity-
	// scaled budget to a retrain that saw no real drift.
	Severity float64
	// BaselineAccuracy and WindowAccuracy are the overall estimates behind
	// Severity (NaN before any observation).
	BaselineAccuracy float64
	// WindowAccuracy is the overall accuracy over the recent window.
	WindowAccuracy float64
	// Classes holds one entry per class the model separates, indexed by
	// class.
	Classes []ClassDrift
}

// Worst returns the class with the largest positive accuracy Drop and that
// drop, or (-1, 0) when no class has sagged — the headline of the
// attribution.
func (r DriftReport) Worst() (class int, drop float64) {
	class = -1
	for _, c := range r.Classes {
		if c.Drop > drop {
			class, drop = c.Class, c.Drop
		}
	}
	if class == -1 {
		return -1, 0
	}
	return class, drop
}

// DriftReport returns the current drift attribution: overall severity plus
// per-class baseline-vs-window accuracy. Classes absent from a window carry
// NaN accuracy and a zero Drop (no evidence, no attribution).
func (l *OnlineLearner) DriftReport() DriftReport {
	rep := DriftReport{
		Drift:            l.DriftDetected(),
		BaselineAccuracy: l.BaselineAccuracy(),
		WindowAccuracy:   l.WindowAccuracy(),
		Classes:          make([]ClassDrift, l.m.Classes()),
	}
	if l.obsSinceBind >= uint64(l.cfg.MinObservations) && l.baseN >= l.cfg.RecentWindow {
		if d := rep.BaselineAccuracy - rep.WindowAccuracy; d > 0 {
			rep.Severity = d
		}
	}
	for c := range rep.Classes {
		cd := ClassDrift{
			Class:            c,
			BaselineAccuracy: math.NaN(),
			WindowAccuracy:   math.NaN(),
			Observations:     l.clsRecentN[c],
		}
		if l.clsBaseN[c] > 0 {
			cd.BaselineAccuracy = float64(l.clsBaseOK[c]) / float64(l.clsBaseN[c])
		}
		if l.clsRecentN[c] > 0 {
			cd.WindowAccuracy = float64(l.clsRecentOK[c]) / float64(l.clsRecentN[c])
		}
		if l.clsBaseN[c] > 0 && l.clsRecentN[c] > 0 {
			cd.Drop = cd.BaselineAccuracy - cd.WindowAccuracy
		}
		rep.Classes[c] = cd
	}
	return rep
}

// Window returns a copy of the retrain window (oldest-first in sliding
// mode; sample order is meaningless in reservoir mode).
func (l *OnlineLearner) Window() (X [][]float64, y []int) {
	q := l.m.Features()
	X = make([][]float64, l.winLen)
	y = make([]int, l.winLen)
	for i := 0; i < l.winLen; i++ {
		// In a full sliding ring, winPos is the oldest slot.
		slot := i
		if !l.cfg.Reservoir && l.winLen == l.cfg.Window {
			slot = (l.winPos + i) % l.cfg.Window
		}
		row := make([]float64, q)
		copy(row, l.winX[slot*q:(slot+1)*q])
		X[i] = row
		y[i] = l.winY[slot]
	}
	return X, y
}

// SplitWindow partitions the feedback window into a training slice and a
// stratified held-out slice: per class, a HoldoutFraction share of that
// class's samples (at least one when the class has two or more, none when
// it has exactly one — a lone sample is worth more as training data) goes
// to the holdout. In sliding mode the NEWEST samples of each class are
// held out, deliberately: the gate's decision target is the FUTURE stream,
// and under drift the future resembles the newest feedback far more than
// the window average — a holdout spread over the whole window would judge
// the incumbent partly on the old regime it was trained on and hand it a
// home-field advantage (false rejections, stalled adaptation). In
// reservoir mode window order is NOT temporal (replacement overwrites
// random slots), so "newest" is meaningless there; the holdout is instead
// spread evenly through each class's samples, mirroring the uniform
// stream sample the reservoir itself maintains. The judged challenger
// forfeits nothing in the end: on a passing verdict RetrainGated refits
// the published successor on the full window. The two slices are
// disjoint, cover the whole window, and are fresh copies; the holdout is
// empty when HoldoutFraction is disabled or the window is too small to
// spare anything.
func (l *OnlineLearner) SplitWindow() (trainX [][]float64, trainY []int, holdX [][]float64, holdY []int) {
	X, y := l.Window()
	if l.cfg.HoldoutFraction <= 0 || len(X) == 0 {
		return X, y, nil, nil
	}
	// Per-class totals and holdout quotas over the snapshot (in sliding
	// mode window order is oldest-first, so "the last quota[c] of class c"
	// are its newest samples).
	total := make([]int, l.m.Classes())
	for _, c := range y {
		total[c]++
	}
	quota := make([]int, l.m.Classes())
	for c, n := range total {
		q := int(l.cfg.HoldoutFraction * float64(n))
		if q == 0 && n >= 2 {
			q = 1
		}
		quota[c] = q
	}
	seen := make([]int, l.m.Classes())
	for i, c := range y {
		j := seen[c]
		seen[c]++
		var hold bool
		if l.cfg.Reservoir {
			// Even spread: held out when the quota line q·(j+1)/n crosses
			// an integer — exactly quota[c] picks, spaced through the
			// class's samples.
			hold = quota[c] > 0 && (j+1)*quota[c]/total[c] > j*quota[c]/total[c]
		} else {
			hold = j >= total[c]-quota[c]
		}
		if hold {
			holdX = append(holdX, X[i])
			holdY = append(holdY, c)
		} else {
			trainX = append(trainX, X[i])
			trainY = append(trainY, c)
		}
	}
	return trainX, trainY, holdX, holdY
}

// Rejections returns how many gated retrains ended with the challenger
// rejected (RetrainGated only; plain Retrain never rejects).
func (l *OnlineLearner) Rejections() uint64 { return l.rejections }

// LearnerState is a deep, self-contained snapshot of an OnlineLearner's
// mutable state: the feedback window ring, the recent-accuracy ring with
// its per-class tallies, the frozen post-bind baseline, the reservoir
// sampler position, and the lifetime counters. Export produces one and
// NewOnlineLearnerFromState rebuilds a learner from it, bit-for-bit —
// the park/wake substrate serve/registry uses so evicting a learning
// tenant never costs it its window, drift state, or counters. Every
// field is a plain value or a fresh slice, so a state survives the
// learner it came from and can be serialized by any encoding that
// round-trips the field types exactly.
type LearnerState struct {
	// WinX is the feedback window's sample backing array, row-major at
	// full Window capacity (Window × features); WinY holds the labels.
	WinX []float64
	// WinY is the feedback window's label backing array (Window slots).
	WinY []int
	// WinLen is how many window slots hold samples.
	WinLen int
	// WinPos is the next slot the sliding ring overwrites.
	WinPos int
	// Seen is the feedback stream length so far (reservoir admission).
	Seen uint64
	// Sampler, SamplerGauss, and SamplerHasGauss freeze the reservoir
	// sampler's position in its random stream, so reservoir admission
	// after a restore draws exactly what the original learner would have.
	Sampler [4]uint64
	// SamplerGauss is the sampler's cached Box-Muller variate.
	SamplerGauss float64
	// SamplerHasGauss is whether SamplerGauss is live.
	SamplerHasGauss bool
	// Recent is the outcome ring behind the windowed accuracy estimate
	// (RecentWindow slots); RecentLabel mirrors it with the true labels.
	Recent []bool
	// RecentLabel holds each recent observation's true label.
	RecentLabel []int
	// RecentLen, RecentPos, and RecentOK are the ring's fill, cursor, and
	// correct-prediction count.
	RecentLen int
	// RecentPos is the ring's overwrite cursor.
	RecentPos int
	// RecentOK counts correct predictions in the ring.
	RecentOK int
	// ClsRecentN and ClsRecentOK are the per-class tallies over the
	// recent ring (drift attribution), indexed by class.
	ClsRecentN []int
	// ClsRecentOK counts correct predictions per class in the ring.
	ClsRecentOK []int
	// ObsSinceBind counts observations since the model was (re)bound —
	// the drift detector's maturity clock.
	ObsSinceBind uint64
	// BaseOK and BaseN are the frozen post-bind baseline tallies.
	BaseOK int
	// BaseN counts baseline observations (frozen at RecentWindow).
	BaseN int
	// ClsBaseN and ClsBaseOK are the baseline's per-class tallies.
	ClsBaseN []int
	// ClsBaseOK counts correct baseline predictions per class.
	ClsBaseOK []int
	// Observations, Attempts, Retrains, and Rejections are the lifetime
	// counters (Observations, Retrains, Rejections accessors).
	Observations uint64
	// Attempts counts retrain attempts (per-attempt seed derivation).
	Attempts uint64
	// Retrains counts completed retrains.
	Retrains uint64
	// Rejections counts gate-rejected retrains.
	Rejections uint64
}

// Export returns a deep snapshot of the learner's mutable state. The
// copy is taken eagerly — the whole window is duplicated — so callers
// must keep it off latency-critical paths (serve/registry captures it
// only when parking a tenant, never per request). Pair it with
// NewOnlineLearnerFromState to rebuild an identical learner later.
func (l *OnlineLearner) Export() *LearnerState {
	st := &LearnerState{
		WinX:         append([]float64(nil), l.winX...),
		WinY:         append([]int(nil), l.winY...),
		WinLen:       l.winLen,
		WinPos:       l.winPos,
		Seen:         l.seen,
		Recent:       append([]bool(nil), l.recent...),
		RecentLabel:  append([]int(nil), l.recentLabel...),
		RecentLen:    l.recentLen,
		RecentPos:    l.recentPos,
		RecentOK:     l.recentOK,
		ClsRecentN:   append([]int(nil), l.clsRecentN...),
		ClsRecentOK:  append([]int(nil), l.clsRecentOK...),
		ObsSinceBind: l.obsSinceBind,
		BaseOK:       l.baseOK,
		BaseN:        l.baseN,
		ClsBaseN:     append([]int(nil), l.clsBaseN...),
		ClsBaseOK:    append([]int(nil), l.clsBaseOK...),
		Observations: l.observations,
		Attempts:     l.attempts,
		Retrains:     l.retrains,
		Rejections:   l.rejections,
	}
	st.Sampler, st.SamplerGauss, st.SamplerHasGauss = l.sampler.State()
	return st
}

// NewOnlineLearnerFromState rebuilds a learner bound to m from a
// snapshot taken by Export, continuing exactly where the exporting
// learner stopped: window contents, drift baseline, accuracy rings,
// counters, and the reservoir sampler's stream position are all
// restored bit-for-bit. cfg must describe the same geometry the
// snapshot was taken under (same Window, RecentWindow, and a model of
// the same shape) — a mismatched snapshot is rejected rather than
// silently truncated. m should be the model the exporting learner was
// bound to (or a successor already published to its serving surface):
// the restored baseline and drift state describe THAT model's behavior.
func NewOnlineLearnerFromState(m *Model, cfg OnlineConfig, st *LearnerState) (*OnlineLearner, error) {
	if st == nil {
		return nil, fmt.Errorf("disthd: NewOnlineLearnerFromState needs a state")
	}
	l, err := NewOnlineLearner(m, cfg)
	if err != nil {
		return nil, err
	}
	c := l.cfg
	if len(st.WinX) != c.Window*m.Features() || len(st.WinY) != c.Window {
		return nil, fmt.Errorf("disthd: learner state window holds %d values / %d labels, config wants %d / %d",
			len(st.WinX), len(st.WinY), c.Window*m.Features(), c.Window)
	}
	if len(st.Recent) != c.RecentWindow || len(st.RecentLabel) != c.RecentWindow {
		return nil, fmt.Errorf("disthd: learner state recent ring %d slots, config wants %d",
			len(st.Recent), c.RecentWindow)
	}
	k := m.Classes()
	if len(st.ClsRecentN) != k || len(st.ClsRecentOK) != k || len(st.ClsBaseN) != k || len(st.ClsBaseOK) != k {
		return nil, fmt.Errorf("disthd: learner state tallies cover %d classes, model has %d",
			len(st.ClsRecentN), k)
	}
	if st.WinLen < 0 || st.WinLen > c.Window || st.WinPos < 0 || st.WinPos >= c.Window ||
		st.RecentLen < 0 || st.RecentLen > c.RecentWindow || st.RecentPos < 0 || st.RecentPos >= c.RecentWindow {
		return nil, fmt.Errorf("disthd: learner state cursors out of range (winLen=%d winPos=%d recentLen=%d recentPos=%d)",
			st.WinLen, st.WinPos, st.RecentLen, st.RecentPos)
	}
	copy(l.winX, st.WinX)
	copy(l.winY, st.WinY)
	l.winLen, l.winPos, l.seen = st.WinLen, st.WinPos, st.Seen
	l.sampler.SetState(st.Sampler, st.SamplerGauss, st.SamplerHasGauss)
	copy(l.recent, st.Recent)
	copy(l.recentLabel, st.RecentLabel)
	l.recentLen, l.recentPos, l.recentOK = st.RecentLen, st.RecentPos, st.RecentOK
	copy(l.clsRecentN, st.ClsRecentN)
	copy(l.clsRecentOK, st.ClsRecentOK)
	l.obsSinceBind, l.baseOK, l.baseN = st.ObsSinceBind, st.BaseOK, st.BaseN
	copy(l.clsBaseN, st.ClsBaseN)
	copy(l.clsBaseOK, st.ClsBaseOK)
	l.observations, l.attempts, l.retrains, l.rejections =
		st.Observations, st.Attempts, st.Retrains, st.Rejections
	return l, nil
}

// bindable validates that m can replace the currently bound model.
func (l *OnlineLearner) bindable(m *Model) error {
	if m == nil {
		return fmt.Errorf("disthd: rebind needs a model")
	}
	if m.Features() != l.m.Features() || m.Dim() != l.m.Dim() || m.Classes() != l.m.Classes() {
		return fmt.Errorf("disthd: successor model shaped %d/%d/%d, learner bound to %d/%d/%d",
			m.Features(), m.Dim(), m.Classes(), l.m.Features(), l.m.Dim(), l.m.Classes())
	}
	return nil
}

// UpgradeModel rebinds the learner to a successor of identical shape
// WITHOUT resetting the accuracy baseline or drift state — for publishing
// an upgrade that is statistically equivalent to the bound model, such as
// the full-window refit behind an accepted challenger (same window, same
// seed, 25% more data). Re-freezing the baseline for such a model would
// only buy MinObservations of drift-detection dead time. For successors
// that genuinely change behavior, use SetModel.
func (l *OnlineLearner) UpgradeModel(m *Model) error {
	if err := l.bindable(m); err != nil {
		return err
	}
	l.m = m
	return nil
}

// SetModel rebinds the learner to a successor model of identical shape —
// called after a retrained or externally swapped model goes live. The
// feedback window is kept (its labels are still valid training data); the
// accuracy baseline and drift state reset, since they measured the old
// model.
func (l *OnlineLearner) SetModel(m *Model) error {
	if err := l.bindable(m); err != nil {
		return err
	}
	l.m = m
	l.obsSinceBind = 0
	l.baseOK, l.baseN = 0, 0
	l.recentLen, l.recentPos, l.recentOK = 0, 0, 0
	for c := range l.clsBaseN {
		l.clsBaseN[c], l.clsBaseOK[c] = 0, 0
		l.clsRecentN[c], l.clsRecentOK[c] = 0, 0
	}
	return nil
}

// Retrain warm-retrains a successor on the current window (Model.Retrain),
// rebinds the learner to it, and returns it. The previous model is left
// untouched, so a caller serving it can publish the successor atomically
// afterwards. Each attempt uses a distinct deterministic seed
// (RetrainConfig.WithAttempt) and a budget scaled by the measured drift
// severity (RetrainConfig.ScaleForSeverity), so repeated retrains explore
// fresh regeneration draws and severe drifts earn deeper reruns. Retrain
// publishes unconditionally; RetrainGated puts a champion/challenger gate
// in front of the rebind.
func (l *OnlineLearner) Retrain() (*Model, error) {
	if l.winLen == 0 {
		return nil, fmt.Errorf("disthd: retrain with an empty feedback window")
	}
	X, y := l.Window()
	next, err := l.retrainOn(X, y)
	if err != nil {
		return nil, err
	}
	l.retrains++
	if err := l.SetModel(next); err != nil {
		return nil, err
	}
	return next, nil
}

// retrainOn trains one challenger on (X, y) with the per-attempt seed and
// severity-scaled budget — the step Retrain and RetrainGated share.
func (l *OnlineLearner) retrainOn(X [][]float64, y []int) (*Model, error) {
	rc := l.nextRetrainConfig()
	return l.m.Retrain(X, y, rc)
}

// nextRetrainConfig derives the next attempt's retrain config: per-attempt
// seed (WithAttempt) and severity-scaled budget (ScaleForSeverity).
func (l *OnlineLearner) nextRetrainConfig() RetrainConfig {
	rc := l.cfg.Retrain.WithAttempt(l.attempts).
		ScaleForSeverity(l.DriftReport().Severity, l.cfg.DriftThreshold)
	l.attempts++
	return rc
}

// RetrainGated warm-retrains a challenger on the training slice of the
// window (SplitWindow) and publishes only if it passes the gate on the
// held-out slice. On a passing (or forced) verdict the incumbent is REFIT
// on the full window — holdout included, identical budget and seed, in
// window order — then the learner rebinds to the refit and returns it: the
// judged challenger's role was to prove the window trustworthy, and a
// deployed model should not forfeit the held-out share of its training
// data (the classic train/validate-then-refit pattern, at one extra warm
// retrain per publish). Because the refit is trained exactly as an
// ungated Retrain would be, the gate changes WHICH retrains publish, never
// what a published retrain looks like. On rejection the incumbent stays
// bound, Rejections increments, and the returned model is nil. force
// publishes regardless of the verdict (which still reports the measured
// margins, with Forced set). The budget is severity-scaled exactly as in
// Retrain.
func (l *OnlineLearner) RetrainGated(g *Gate, force bool) (*Model, GateVerdict, error) {
	if g == nil {
		return nil, GateVerdict{}, fmt.Errorf("disthd: RetrainGated needs a gate")
	}
	if l.winLen == 0 {
		return nil, GateVerdict{}, fmt.Errorf("disthd: retrain with an empty feedback window")
	}
	// SplitWindow never starves training: with HoldoutFraction < 1
	// (enforced by withDefaults) every class keeps at least one sample, so
	// a non-empty window always yields a non-empty training slice.
	trainX, trainY, holdX, holdY := l.SplitWindow()
	rc := l.nextRetrainConfig()
	next, err := l.m.Retrain(trainX, trainY, rc)
	if err != nil {
		return nil, GateVerdict{}, err
	}
	v, err := g.Evaluate(l.m, next, holdX, holdY)
	if err != nil {
		return nil, GateVerdict{}, err
	}
	v.Forced = force
	if !v.Publish && !force {
		l.rejections++
		return nil, v, nil
	}
	if len(holdX) > 0 {
		X, y := l.Window()
		if next, err = l.m.Retrain(X, y, rc); err != nil {
			return nil, v, err
		}
	}
	l.retrains++
	if err := l.SetModel(next); err != nil {
		return nil, v, err
	}
	return next, v, nil
}
