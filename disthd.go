package disthd

import (
	"fmt"
	"math"

	"repro/internal/bitpack"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/mat"
)

// Config selects the DistHD hyperparameters. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Dim is the physical hypervector dimensionality D. The paper's
	// compressed operating point is 512 ("0.5k").
	Dim int
	// Iterations is the number of train-then-regenerate rounds.
	Iterations int
	// LearningRate is η of the adaptive learning rule (Algorithm 1).
	LearningRate float64
	// Alpha, Beta, Theta weight the distance matrices of Algorithm 2.
	// Alpha scales distance-from-the-true-label (sensitivity knob); Beta
	// and Theta scale closeness-to-the-wrong-labels (specificity knobs).
	// Theta must be < Beta.
	Alpha, Beta, Theta float64
	// RegenRate is R, the fraction of dimensions regenerated per
	// iteration.
	RegenRate float64
	// Encoder picks the encoder family (EncoderRBF by default).
	Encoder EncoderKind
	// Seed makes the whole run reproducible.
	Seed uint64
}

// EncoderKind selects the regenerable encoder family.
type EncoderKind int

const (
	// EncoderRBF is the paper's nonlinear encoder:
	// h_d = cos(B_d·x + c_d)·sin(B_d·x).
	EncoderRBF EncoderKind = iota
	// EncoderLinear is a Gaussian random projection.
	EncoderLinear
)

// DefaultConfig returns the paper-shaped defaults (D = 512, 20 iterations,
// η = 0.05, α = β = 1, θ = 0.5, R = 10%, RBF encoder).
func DefaultConfig() Config {
	c := core.DefaultConfig()
	return Config{
		Dim:          c.Dim,
		Iterations:   c.Iterations,
		LearningRate: c.LearningRate,
		Alpha:        c.Alpha,
		Beta:         c.Beta,
		Theta:        c.Theta,
		RegenRate:    c.RegenRate,
		Encoder:      EncoderRBF,
		Seed:         1,
	}
}

// toCore translates the public config to the internal one.
func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.Dim = c.Dim
	cc.Iterations = c.Iterations
	cc.LearningRate = c.LearningRate
	cc.Alpha = c.Alpha
	cc.Beta = c.Beta
	cc.Theta = c.Theta
	cc.RegenRate = c.RegenRate
	cc.Seed = c.Seed
	return cc
}

// Model is a trained DistHD classifier.
type Model struct {
	clf  *core.Classifier
	kind EncoderKind
	// packed, when non-nil, marks the model as a frozen 1-bit quantized
	// view (see Quantize1Bit): the packed sign bits of every class
	// hypervector, served through the XOR+popcount kernels.
	packed *bitpack.Matrix
	// Info summarizes the training run that produced the model.
	Info TrainInfo
}

// TrainInfo reports how training went.
type TrainInfo struct {
	// Iterations actually run (early stopping may cut the budget short).
	Iterations int
	// RegeneratedDims counts regenerations with multiplicity.
	RegeneratedDims int
	// EffectiveDim is D* = D + RegeneratedDims, the paper's effective
	// dimensionality metric.
	EffectiveDim int
	// FinalTrainAccuracy is the training accuracy of the last iteration.
	FinalTrainAccuracy float64
}

// Train fits a DistHD classifier with the default configuration.
// X holds one sample per row; y[i] in [0, classes) labels X[i].
func Train(X [][]float64, y []int, classes int) (*Model, error) {
	return TrainWithConfig(X, y, classes, DefaultConfig())
}

// TrainWithConfig fits a DistHD classifier with an explicit configuration.
func TrainWithConfig(X [][]float64, y []int, classes int, cfg Config) (*Model, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("disthd: empty training set")
	}
	features := len(X[0])
	if features == 0 {
		return nil, fmt.Errorf("disthd: samples have no features")
	}
	for i, row := range X {
		if len(row) != features {
			return nil, fmt.Errorf("disthd: ragged input, sample %d has %d features, want %d", i, len(row), features)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("disthd: non-finite feature %v at sample %d, column %d "+
					"(NaN/Inf would silently poison the class hypervectors)", v, i, j)
			}
		}
	}
	var enc encoding.Regenerable
	switch cfg.Encoder {
	case EncoderRBF:
		enc = encoding.NewRBF(features, cfg.Dim, cfg.Seed^0xd15c0)
	case EncoderLinear:
		enc = encoding.NewLinear(features, cfg.Dim, false, cfg.Seed^0xd15c0)
	default:
		return nil, fmt.Errorf("disthd: unknown encoder kind %d", cfg.Encoder)
	}
	clf, stats, err := core.Train(enc, mat.FromRows(X), y, classes, cfg.toCore())
	if err != nil {
		return nil, err
	}
	return &Model{
		clf:  clf,
		kind: cfg.Encoder,
		Info: TrainInfo{
			Iterations:         len(stats.Iters),
			RegeneratedDims:    stats.TotalRegenerated,
			EffectiveDim:       stats.EffectiveDim,
			FinalTrainAccuracy: stats.FinalTrainAcc(),
		},
	}, nil
}

// Classes returns the number of classes the model separates.
func (m *Model) Classes() int { return m.clf.Model.Classes() }

// Dim returns the physical hypervector dimensionality.
func (m *Model) Dim() int { return m.clf.Model.Dim() }

// Features returns the expected input width.
func (m *Model) Features() int { return m.clf.Enc.Features() }

// Predict classifies a single feature vector. On a quantized model this
// runs entirely on the packed tier (sign-bit encode, XOR+popcount
// scoring).
func (m *Model) Predict(x []float64) (int, error) {
	if len(x) != m.Features() {
		return 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), m.Features())
	}
	if m.Quantized() {
		scores := m.packedScoresSingle(x)
		best := 0
		for c := 1; c < len(scores); c++ {
			if scores[c] > scores[best] {
				best = c
			}
		}
		return best, nil
	}
	return m.clf.Predict(x), nil
}

// PredictTop2 returns the two most plausible classes, best first — the
// top-2 classification primitive at the heart of the paper.
func (m *Model) PredictTop2(x []float64) (first, second int, err error) {
	if len(x) != m.Features() {
		return 0, 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), m.Features())
	}
	if m.Quantized() {
		first, second = packedTop2(m.packedScoresSingle(x))
		return first, second, nil
	}
	first, second = m.clf.PredictTop2(x)
	return first, second, nil
}

// Scores returns the cosine similarity of x with every class
// hypervector. On a quantized model the scores are the exact bipolar
// cosines agreement/D (both packed vectors have norm √D), so they live
// on the same [−1, 1] scale as the float path.
func (m *Model) Scores(x []float64) ([]float64, error) {
	if len(x) != m.Features() {
		return nil, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), m.Features())
	}
	if m.Quantized() {
		agr := m.packedScoresSingle(x)
		out := make([]float64, len(agr))
		for c, a := range agr {
			out[c] = float64(a) / float64(m.Dim())
		}
		return out, nil
	}
	return m.clf.Scores(x), nil
}

// PredictBatch classifies many samples at once (parallel across CPUs).
func (m *Model) PredictBatch(X [][]float64) ([]int, error) {
	if len(X) == 0 {
		return nil, nil
	}
	if len(X[0]) != m.Features() {
		return nil, fmt.Errorf("disthd: input has %d features, model expects %d", len(X[0]), m.Features())
	}
	if m.Quantized() {
		out, _ := m.packedPredictBatch(X, false)
		return out, nil
	}
	return m.clf.PredictBatch(mat.FromRows(X)), nil
}

// Evaluate returns classification accuracy over a labeled set.
func (m *Model) Evaluate(X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) {
		return 0, fmt.Errorf("disthd: %d samples but %d labels", len(X), len(y))
	}
	if len(X) == 0 {
		return 0, fmt.Errorf("disthd: empty evaluation set")
	}
	pred, err := m.PredictBatch(X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Update performs one online learning step on a labeled sample: if the
// model's current prediction is wrong, the wrongly-winning class is
// weakened and the true class strengthened, each scaled by the sample's
// novelty (Algorithm 1 of the paper). It returns whether the pre-update
// prediction was already correct.
//
// Update is the on-device continual-learning primitive: a deployed edge
// model can keep adapting to drifting sensor statistics without a full
// retrain. Dimension regeneration does not occur online (it needs batch
// error statistics); schedule periodic re-training for that.
func (m *Model) Update(x []float64, label int) (wasCorrect bool, err error) {
	if m.Quantized() {
		return false, fmt.Errorf("disthd: quantized model is frozen; online updates need the f32 champion")
	}
	if len(x) != m.Features() {
		return false, fmt.Errorf("disthd: input has %d features, model expects %d", len(x), m.Features())
	}
	if label < 0 || label >= m.Classes() {
		return false, fmt.Errorf("disthd: label %d outside [0,%d)", label, m.Classes())
	}
	return m.clf.Update(x, label, m.clf.Cfg.LearningRate), nil
}

// TopKAccuracy returns the fraction of samples whose true label appears in
// the k most similar classes.
func (m *Model) TopKAccuracy(X [][]float64, y []int, k int) (float64, error) {
	if len(X) != len(y) || len(X) == 0 {
		return 0, fmt.Errorf("disthd: bad evaluation set (%d samples, %d labels)", len(X), len(y))
	}
	if len(X[0]) != m.Features() {
		return 0, fmt.Errorf("disthd: input has %d features, model expects %d", len(X[0]), m.Features())
	}
	if m.Quantized() {
		_, scores := m.packedPredictBatch(X, true)
		classes := m.Classes()
		correct := 0
		for i := range X {
			s := scores[i*classes : (i+1)*classes]
			ys := s[y[i]]
			rank := 0
			for c, v := range s {
				if v > ys || (v == ys && c < y[i]) {
					rank++
				}
			}
			if rank < k {
				correct++
			}
		}
		return float64(correct) / float64(len(y)), nil
	}
	return m.clf.TopKAccuracy(mat.FromRows(X), y, k), nil
}

// DimensionSaliency returns, per hypervector dimension, the variance of
// the normalized class weights — the saliency signal NeuralHD regenerates
// by and DistHD uses as its over-elimination guard. Low values mark
// dimensions carrying little discriminative information; a downstream user
// can inspect it to choose a smaller deployment dimensionality.
func (m *Model) DimensionSaliency() []float64 {
	norm := m.clf.Model.Weights.Clone()
	norm.RowNormalizeL2()
	d := m.Dim()
	k := m.Classes()
	out := make([]float64, d)
	col := make([]float64, k)
	for j := 0; j < d; j++ {
		for c := 0; c < k; c++ {
			col[c] = norm.At(c, j)
		}
		out[j] = mat.Variance(col)
	}
	return out
}

// ClassHypervector returns a copy of the learned hypervector for a class.
func (m *Model) ClassHypervector(class int) ([]float64, error) {
	if class < 0 || class >= m.Classes() {
		return nil, fmt.Errorf("disthd: class %d outside [0,%d)", class, m.Classes())
	}
	out := make([]float64, m.Dim())
	copy(out, m.clf.Model.Weights.Row(class))
	return out, nil
}
