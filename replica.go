package disthd

import (
	"fmt"

	"repro/internal/mat"
)

// Replica is a single-goroutine inference context: every buffer batched
// prediction needs — the row-gathered input matrix, the encoded batch, and
// the score matrix — is leased once from one contiguous arena
// (mat.NewLease) and reused for the replica's lifetime, so the steady-state
// serving loop allocates nothing and never contends on a shared pool.
//
// A Replica is shape-bound, not model-bound: it serves any model whose
// (features, dim, classes) match the model it was created from, which is
// exactly the compatibility contract serve.Swapper enforces for hot swaps.
// That is what makes an in-flight model swap free: the worker keeps its
// scratch and only the *Model pointer it passes to PredictBatch changes.
//
// A Replica must not be shared across goroutines; give each worker its own.
type Replica struct {
	features, dim, classes int
	maxBatch               int
	x, h, s                mat.Dense // views over the leased arena
	xbuf, hbuf, sbuf       []float64
}

// NewReplica builds an inference context sized for batches of up to
// maxBatch rows, shaped after m. maxBatch must be positive.
func (m *Model) NewReplica(maxBatch int) (*Replica, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("disthd: NewReplica batch size %d, want > 0", maxBatch)
	}
	q, d, k := m.Features(), m.Dim(), m.Classes()
	lease := mat.NewLease(maxBatch * (q + d + k))
	r := &Replica{
		features: q, dim: d, classes: k,
		maxBatch: maxBatch,
		xbuf:     lease.Floats(maxBatch * q),
		hbuf:     lease.Floats(maxBatch * d),
		sbuf:     lease.Floats(maxBatch * k),
	}
	return r, nil
}

// MaxBatch returns the largest chunk the replica predicts in one kernel
// pass; larger inputs to PredictBatch are chunked transparently.
func (r *Replica) MaxBatch() int { return r.maxBatch }

// Compatible reports whether the replica's scratch fits m — same feature
// width, hypervector dimensionality and class count.
func (r *Replica) Compatible(m *Model) bool {
	return m.Features() == r.features && m.Dim() == r.dim && m.Classes() == r.classes
}

// PredictBatch classifies rows through m into out (len(out) >= len(rows)),
// running the zero-allocation EncodeBatchInto → PredictBatchInto kernel
// path over the replica's leased scratch. Inputs longer than MaxBatch are
// processed in MaxBatch-sized chunks. It returns the number of rows
// written, which is len(rows) on success.
func (r *Replica) PredictBatch(m *Model, rows [][]float64, out []int) (int, error) {
	if !r.Compatible(m) {
		return 0, fmt.Errorf("disthd: replica shaped %d/%d/%d cannot serve model shaped %d/%d/%d",
			r.features, r.dim, r.classes, m.Features(), m.Dim(), m.Classes())
	}
	if len(out) < len(rows) {
		return 0, fmt.Errorf("disthd: out has %d slots for %d rows", len(out), len(rows))
	}
	for i, row := range rows {
		if len(row) != r.features {
			return 0, fmt.Errorf("disthd: row %d has %d features, model expects %d", i, len(row), r.features)
		}
	}
	done := 0
	for done < len(rows) {
		n := len(rows) - done
		if n > r.maxBatch {
			n = r.maxBatch
		}
		r.predictChunk(m, rows[done:done+n], out[done:done+n])
		done += n
	}
	return done, nil
}

// predictChunk runs one ≤ maxBatch kernel pass. Rows are pre-validated.
func (r *Replica) predictChunk(m *Model, rows [][]float64, out []int) {
	n := len(rows)
	r.x = mat.Dense{Rows: n, Cols: r.features, Data: r.xbuf[:n*r.features]}
	r.h = mat.Dense{Rows: n, Cols: r.dim, Data: r.hbuf[:n*r.dim]}
	r.s = mat.Dense{Rows: n, Cols: r.classes, Data: r.sbuf[:n*r.classes]}
	for i, row := range rows {
		copy(r.x.Row(i), row)
	}
	m.clf.Enc.EncodeBatchInto(&r.x, &r.h)
	m.clf.Model.PredictBatchInto(&r.h, &r.s, out)
}
