package disthd

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/encoding"
	"repro/internal/mat"
)

// Replica is a single-goroutine inference context: every buffer batched
// prediction needs — the row-gathered input matrix, the encoded batch, and
// the score matrix — is leased once from one contiguous arena
// (mat.NewLease) and reused for the replica's lifetime, so the steady-state
// serving loop allocates nothing and never contends on a shared pool.
//
// A Replica is shape-bound, not model-bound: it serves any model whose
// (features, dim, classes) match the model it was created from, which is
// exactly the compatibility contract serve.Swapper enforces for hot swaps.
// That is what makes an in-flight model swap free: the worker keeps its
// scratch and only the *Model pointer it passes to PredictBatch changes.
// The scratch always includes the packed tier's buffers (query sign bits
// and integer agreement scores), so swapping between an f32 champion and
// a 1-bit quantized successor of the same shape is equally free; the only
// per-swap cost is rebinding the packed encoder wrapper the first time a
// new quantized model is served (one small allocation, off the steady
// state).
//
// A Replica must not be shared across goroutines; give each worker its own.
type Replica struct {
	features, dim, classes int
	maxBatch               int
	x, h, s                mat.Dense // views over the leased arena
	xbuf, hbuf, sbuf       []float64

	// Packed-tier scratch: the packed projection runs in float32 (x32
	// holds the lowered inputs, z32 the raw projections; both are padded
	// views over f32buf with zero padding the kernels rely on), qm holds
	// the packed query bits of a chunk (qview is the live sub-view handed
	// to the kernels), iscores the integer agreement scores. penc is the
	// packed encoder wrapper bound to pencSrc, rebuilt only when the
	// served model's encoder changes.
	x32, z32 mat.Dense32
	f32buf   []float32
	qm       *bitpack.Matrix
	qview    bitpack.Matrix
	iscores  []int32
	penc     *encoding.PackedRBF
	pencSrc  encoding.Encoder
}

// NewReplica builds an inference context sized for batches of up to
// maxBatch rows, shaped after m. maxBatch must be positive.
func (m *Model) NewReplica(maxBatch int) (*Replica, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("disthd: NewReplica batch size %d, want > 0", maxBatch)
	}
	q, d, k := m.Features(), m.Dim(), m.Classes()
	lease := mat.NewLease(maxBatch * (q + d + k))
	qs, ds := mat.Stride32(q), mat.Stride32(d)
	r := &Replica{
		features: q, dim: d, classes: k,
		maxBatch: maxBatch,
		xbuf:     lease.Floats(maxBatch * q),
		hbuf:     lease.Floats(maxBatch * d),
		sbuf:     lease.Floats(maxBatch * k),
		f32buf:   make([]float32, maxBatch*(qs+ds)),
		qm:       bitpack.NewMatrix(maxBatch, d),
		iscores:  make([]int32, maxBatch*k),
	}
	r.x32 = *mat.View32(maxBatch, q, r.f32buf[:maxBatch*qs])
	r.z32 = *mat.View32(maxBatch, d, r.f32buf[maxBatch*qs:])
	r.qview = *r.qm
	// Bind the packed encoder up front for a quantized model so the first
	// request doesn't pay the one-time wrapper + f32 base cache build;
	// predictChunk rebinds lazily after a hot swap changes the encoder.
	if m.Quantized() {
		p, err := encoding.NewPackedRBF(m.clf.Enc)
		if err != nil {
			return nil, fmt.Errorf("disthd: quantized model without RBF encoder: %w", err)
		}
		r.penc, r.pencSrc = p, m.clf.Enc
	}
	return r, nil
}

// MaxBatch returns the largest chunk the replica predicts in one kernel
// pass; larger inputs to PredictBatch are chunked transparently.
func (r *Replica) MaxBatch() int { return r.maxBatch }

// Compatible reports whether the replica's scratch fits m — same feature
// width, hypervector dimensionality and class count. Quantized and f32
// models of the same shape are equally compatible.
func (r *Replica) Compatible(m *Model) bool {
	return m.Features() == r.features && m.Dim() == r.dim && m.Classes() == r.classes
}

// PredictBatch classifies rows through m into out (len(out) >= len(rows)),
// running the zero-allocation EncodeBatchInto → PredictBatchInto kernel
// path over the replica's leased scratch — or, for a quantized model, the
// packed encode → XOR+popcount path over the packed scratch. Inputs longer
// than MaxBatch are processed in MaxBatch-sized chunks. It returns the
// number of rows written, which is len(rows) on success.
func (r *Replica) PredictBatch(m *Model, rows [][]float64, out []int) (int, error) {
	if !r.Compatible(m) {
		return 0, fmt.Errorf("disthd: replica shaped %d/%d/%d cannot serve model shaped %d/%d/%d",
			r.features, r.dim, r.classes, m.Features(), m.Dim(), m.Classes())
	}
	if len(out) < len(rows) {
		return 0, fmt.Errorf("disthd: out has %d slots for %d rows", len(out), len(rows))
	}
	for i, row := range rows {
		if len(row) != r.features {
			return 0, fmt.Errorf("disthd: row %d has %d features, model expects %d", i, len(row), r.features)
		}
	}
	done := 0
	for done < len(rows) {
		n := len(rows) - done
		if n > r.maxBatch {
			n = r.maxBatch
		}
		r.predictChunk(m, rows[done:done+n], out[done:done+n])
		done += n
	}
	return done, nil
}

// predictChunk runs one ≤ maxBatch kernel pass. Rows are pre-validated.
func (r *Replica) predictChunk(m *Model, rows [][]float64, out []int) {
	n := len(rows)
	if m.Quantized() {
		r.bindPacked(m)
		// The packed projection runs in float32: lower the rows straight
		// into the padded f32 scratch (writing only the logical columns
		// keeps the zero padding the kernels run over).
		r.x32.Rows = n
		for i, row := range rows {
			x32 := r.x32.Row(i)
			for j, v := range row {
				x32[j] = float32(v)
			}
		}
		r.predictPacked(m, n, out)
		return
	}
	for i, row := range rows {
		copy(r.xbuf[i*r.features:(i+1)*r.features], row)
	}
	r.predictDense(m, n, out)
}

// bindPacked (re)binds the packed encoder wrapper to m's encoder; a no-op
// on the steady state, one small allocation after a hot swap changes the
// encoder.
func (r *Replica) bindPacked(m *Model) {
	if r.pencSrc == m.clf.Enc {
		return
	}
	p, err := encoding.NewPackedRBF(m.clf.Enc)
	if err != nil {
		// Unreachable: Quantize1Bit and the packed loader only produce
		// RBF-encoded models.
		panic(fmt.Sprintf("disthd: quantized model without RBF encoder: %v", err))
	}
	r.penc, r.pencSrc = p, m.clf.Enc
}

// predictPacked runs the packed encode → XOR+popcount tail over the n rows
// already lowered into the x32 scratch.
func (r *Replica) predictPacked(m *Model, n int, out []int) {
	r.x32.Rows, r.z32.Rows = n, n
	r.qview.Rows = n
	r.penc.EncodeBatchPackedInto(&r.x32, &r.z32, &r.qview)
	r.x32.Rows, r.z32.Rows = r.maxBatch, r.maxBatch
	bitpack.PredictBatchInto(m.packed, &r.qview, r.iscores[:n*r.classes], out)
}

// predictDense runs the f32 EncodeBatchInto → PredictBatchInto tail over
// the n rows already resident in the leased input scratch.
func (r *Replica) predictDense(m *Model, n int, out []int) {
	r.x = mat.Dense{Rows: n, Cols: r.features, Data: r.xbuf[:n*r.features]}
	r.h = mat.Dense{Rows: n, Cols: r.dim, Data: r.hbuf[:n*r.dim]}
	r.s = mat.Dense{Rows: n, Cols: r.classes, Data: r.sbuf[:n*r.classes]}
	m.clf.Enc.EncodeBatchInto(&r.x, &r.h)
	m.clf.Model.PredictBatchInto(&r.h, &r.s, out)
}

// InputScratch exposes the replica's leased input buffer sized for n rows
// of Features() values each, row-major. A decoder that lands request rows
// here and then calls PredictScratch skips the intermediate [][]float64 a
// PredictBatch call would need — the decode-into-lease fast path the
// binary wire protocol rides. The returned slice aliases the replica's
// arena and is only valid until the next predict call on this replica.
func (r *Replica) InputScratch(n int) ([]float64, error) {
	if n <= 0 || n > r.maxBatch {
		return nil, fmt.Errorf("disthd: InputScratch for %d rows, want 1..%d", n, r.maxBatch)
	}
	return r.xbuf[:n*r.features], nil
}

// PredictScratch classifies the n rows currently resident in InputScratch
// through m into out (len(out) >= n), without copying them again. For a
// quantized model the rows are lowered from the scratch into the packed
// float32 path; for an f32 model the kernels run over the scratch
// directly. Steady-state it allocates nothing.
func (r *Replica) PredictScratch(m *Model, n int, out []int) error {
	if !r.Compatible(m) {
		return fmt.Errorf("disthd: replica shaped %d/%d/%d cannot serve model shaped %d/%d/%d",
			r.features, r.dim, r.classes, m.Features(), m.Dim(), m.Classes())
	}
	if n <= 0 || n > r.maxBatch {
		return fmt.Errorf("disthd: PredictScratch over %d rows, want 1..%d", n, r.maxBatch)
	}
	if len(out) < n {
		return fmt.Errorf("disthd: out has %d slots for %d rows", len(out), n)
	}
	if m.Quantized() {
		r.bindPacked(m)
		r.x32.Rows = n
		for i := 0; i < n; i++ {
			src := r.xbuf[i*r.features : (i+1)*r.features]
			x32 := r.x32.Row(i)
			for j, v := range src {
				x32[j] = float32(v)
			}
		}
		r.predictPacked(m, n, out)
		return nil
	}
	r.predictDense(m, n, out)
	return nil
}
