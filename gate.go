package disthd

import "fmt"

// GateConfig configures a champion/challenger Gate. The zero value is the
// documented default.
type GateConfig struct {
	// MinMargin is the holdout-accuracy lead the challenger needs over the
	// champion to publish: the verdict is publish when
	// challenger - champion >= MinMargin. The default 0 publishes a
	// challenger that is at least as accurate as the incumbent (a tie goes
	// to the challenger — it embodies the newer data); raise it to demand a
	// strict improvement, or pass a small negative value to tolerate a
	// bounded regression (e.g. to keep adapting under heavy feedback noise).
	MinMargin float64
}

// Gate is the champion/challenger publication gate: it scores a serving
// incumbent (the champion) and a freshly retrained successor (the
// challenger) on a held-out slice of the feedback window and decides
// whether the challenger may replace the incumbent. It exists because a
// retrain on a noisy or unlucky feedback window can produce a successor
// WORSE than the model it would replace — the gate is what keeps such a
// challenger from ever serving traffic. OnlineLearner.RetrainGated and
// serve.Learner route their retrains through one; the holdout comes from
// OnlineLearner.SplitWindow.
//
// A Gate is stateless and safe for concurrent use.
type Gate struct {
	cfg GateConfig
}

// NewGate builds a gate with cfg.
func NewGate(cfg GateConfig) *Gate { return &Gate{cfg: cfg} }

// MinMargin returns the configured publication margin.
func (g *Gate) MinMargin() float64 { return g.cfg.MinMargin }

// GateVerdict reports one champion/challenger evaluation.
type GateVerdict struct {
	// Publish is the gate's verdict: the challenger's holdout accuracy beat
	// the champion's by at least MinMargin (or there was no holdout to
	// judge on).
	Publish bool
	// Forced is set by callers that published regardless of the verdict
	// (OnlineLearner.RetrainGated force, the /retrain?force=1 endpoint);
	// the accuracy fields still carry the measured evaluation.
	Forced bool
	// ChampionAccuracy is the incumbent's holdout accuracy (0 with an empty
	// holdout).
	ChampionAccuracy float64
	// ChallengerAccuracy is the retrained successor's holdout accuracy (0
	// with an empty holdout).
	ChallengerAccuracy float64
	// Margin is ChallengerAccuracy - ChampionAccuracy, the quantity judged
	// against MinMargin.
	Margin float64
	// HoldoutSize is how many held-out samples the verdict rests on. 0
	// means the gate had no evidence and published by default.
	HoldoutSize int
}

// marginEps absorbs float rounding when a margin is compared against
// MinMargin: accuracies are ratios of small integers, so two models that
// tie on the holdout must produce Margin == 0 exactly, but a caller-chosen
// MinMargin may itself carry rounding.
const marginEps = 1e-12

// Evaluate scores champion and challenger on the holdout (X, y) and
// returns the verdict. An empty holdout publishes by default — with no
// evidence the gate cannot justify discarding a retrain that tracked newer
// data (callers wanting hard gating must keep HoldoutFraction positive and
// the window large enough to spare samples). Ties at exactly MinMargin
// publish.
func (g *Gate) Evaluate(champion, challenger *Model, X [][]float64, y []int) (GateVerdict, error) {
	if champion == nil || challenger == nil {
		return GateVerdict{}, fmt.Errorf("disthd: gate needs both a champion and a challenger")
	}
	if len(X) != len(y) {
		return GateVerdict{}, fmt.Errorf("disthd: gate holdout has %d samples but %d labels", len(X), len(y))
	}
	if len(X) == 0 {
		return GateVerdict{Publish: true}, nil
	}
	champ, err := champion.Evaluate(X, y)
	if err != nil {
		return GateVerdict{}, fmt.Errorf("disthd: gate champion: %w", err)
	}
	chall, err := challenger.Evaluate(X, y)
	if err != nil {
		return GateVerdict{}, fmt.Errorf("disthd: gate challenger: %w", err)
	}
	margin := chall - champ
	return GateVerdict{
		Publish:            margin >= g.cfg.MinMargin-marginEps,
		ChampionAccuracy:   champ,
		ChallengerAccuracy: chall,
		Margin:             margin,
		HoldoutSize:        len(X),
	}, nil
}
